package logic

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := map[Value]string{Lo: "0", Hi: "1", X: "x", Z: "z"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Value(%d).String() = %q, want %q", v, got, want)
		}
	}
	if got := Value(9).String(); got != "Value(9)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestValueOf(t *testing.T) {
	for _, c := range []struct {
		r    rune
		want Value
	}{{'0', Lo}, {'1', Hi}, {'x', X}, {'X', X}, {'z', Z}, {'Z', Z}} {
		got, err := ValueOf(c.r)
		if err != nil || got != c.want {
			t.Errorf("ValueOf(%q) = %v, %v; want %v", c.r, got, err, c.want)
		}
	}
	if _, err := ValueOf('q'); err == nil {
		t.Error("ValueOf('q') succeeded, want error")
	}
}

func TestNotTruthTable(t *testing.T) {
	cases := map[Value]Value{Lo: Hi, Hi: Lo, X: X, Z: X}
	for in, want := range cases {
		if got := Not(in); got != want {
			t.Errorf("Not(%v) = %v, want %v", in, got, want)
		}
	}
}

// ref implements gate semantics by enumerating concrete interpretations of
// X/Z inputs: the output is the common result if all interpretations agree,
// X otherwise. Every two-input gate must be at least as precise as plain X
// contamination and no more optimistic than this reference.
func ref(op func(a, b Value) Value, a, b Value) Value {
	interp := func(v Value) []Value {
		if v.IsKnown() {
			return []Value{v}
		}
		return []Value{Lo, Hi}
	}
	var out Value
	first := true
	for _, av := range interp(a) {
		for _, bv := range interp(b) {
			r := op(av, bv)
			if first {
				out, first = r, false
			} else if r != out {
				return X
			}
		}
	}
	return out
}

func TestGateTruthTables(t *testing.T) {
	vals := []Value{Lo, Hi, X, Z}
	gates := []struct {
		name string
		f    func(a, b Value) Value
	}{
		{"And", And}, {"Or", Or}, {"Xor", Xor},
		{"Nand", Nand}, {"Nor", Nor}, {"Xnor", Xnor},
	}
	for _, g := range gates {
		for _, a := range vals {
			for _, b := range vals {
				want := ref(g.f, a, b)
				if got := g.f(a, b); got != want {
					t.Errorf("%s(%v, %v) = %v, want %v", g.name, a, b, got, want)
				}
			}
		}
	}
}

func TestGateCommutativity(t *testing.T) {
	vals := []Value{Lo, Hi, X, Z}
	for _, g := range []struct {
		name string
		f    func(a, b Value) Value
	}{{"And", And}, {"Or", Or}, {"Xor", Xor}, {"Nand", Nand}, {"Nor", Nor}, {"Xnor", Xnor}} {
		for _, a := range vals {
			for _, b := range vals {
				if g.f(a, b) != g.f(b, a) {
					t.Errorf("%s not commutative at (%v, %v)", g.name, a, b)
				}
			}
		}
	}
}

func TestMux(t *testing.T) {
	cases := []struct {
		sel, a, b, want Value
	}{
		{Lo, Lo, Hi, Lo},
		{Hi, Lo, Hi, Hi},
		{X, Lo, Hi, X},
		{X, Hi, Hi, Hi}, // branches agree: select is irrelevant
		{X, Lo, Lo, Lo}, // branches agree
		{X, X, X, X},    // unknown branches stay unknown
		{Z, Hi, Hi, Hi}, // Z select behaves as X
		{Lo, X, Hi, X},  // selected branch unknown
		{Hi, Lo, X, X},  // selected branch unknown
		{X, Lo, X, X},   // one branch unknown: cannot agree
	}
	for _, c := range cases {
		if got := Mux(c.sel, c.a, c.b); got != c.want {
			t.Errorf("Mux(%v, %v, %v) = %v, want %v", c.sel, c.a, c.b, got, c.want)
		}
	}
}

func TestMergeValueLattice(t *testing.T) {
	vals := []Value{Lo, Hi, X}
	for _, a := range vals {
		for _, b := range vals {
			m := MergeValue(a, b)
			// Join: m covers both operands.
			if !Covers(m, a) || !Covers(m, b) {
				t.Errorf("MergeValue(%v, %v) = %v does not cover operands", a, b, m)
			}
			// Commutative and idempotent.
			if MergeValue(b, a) != m {
				t.Errorf("MergeValue not commutative at (%v, %v)", a, b)
			}
			if MergeValue(a, a) != a {
				t.Errorf("MergeValue(%v, %v) not idempotent", a, a)
			}
		}
	}
}

func TestCovers(t *testing.T) {
	cases := []struct {
		c, e Value
		want bool
	}{
		{X, Lo, true}, {X, Hi, true}, {X, X, true},
		{Lo, Lo, true}, {Hi, Hi, true},
		{Lo, Hi, false}, {Hi, Lo, false},
		{Lo, X, false}, {Hi, X, false},
	}
	for _, c := range cases {
		if got := Covers(c.c, c.e); got != c.want {
			t.Errorf("Covers(%v, %v) = %v, want %v", c.c, c.e, got, c.want)
		}
	}
}

func TestBool(t *testing.T) {
	if Bool(true) != Hi || Bool(false) != Lo {
		t.Error("Bool mapping wrong")
	}
}

// Property: De Morgan holds in four-valued logic for all input pairs.
func TestDeMorganProperty(t *testing.T) {
	f := func(ab uint8) bool {
		a := Value(ab % 4)
		b := Value(ab / 4 % 4)
		return Not(And(a, b)) == Or(Not(a), Not(b)) &&
			Not(Or(a, b)) == And(Not(a), Not(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: X-monotonicity — replacing a known input by X never turns a
// known output into a different known output (it may only become X).
func TestXMonotonicityProperty(t *testing.T) {
	gates := []func(a, b Value) Value{And, Or, Xor, Nand, Nor, Xnor}
	vals := []Value{Lo, Hi}
	for gi, g := range gates {
		for _, a := range vals {
			for _, b := range vals {
				exact := g(a, b)
				for _, blurA := range []Value{a, X} {
					for _, blurB := range []Value{b, X} {
						got := g(blurA, blurB)
						if got.IsKnown() && got != exact {
							t.Errorf("gate %d not X-monotone: (%v,%v)=%v but (%v,%v)=%v",
								gi, a, b, exact, blurA, blurB, got)
						}
					}
				}
			}
		}
	}
}
