package logic

import (
	"encoding/binary"
	"fmt"
)

// This file implements the canonical binary encoding of Vec used by the
// run-governance checkpoint format: a little-endian u32 width followed by
// ceil(width/64) packed "known" words and the same number of "val" words.
// The encoding is canonical — bits above the width and val bits of unknown
// positions are always zero — so decoding a valid encoding and re-encoding
// it reproduces the input byte-for-byte, which is what makes checkpoint
// files safely round-trippable (and fuzzable for it).

// AppendBinary appends the canonical binary encoding of v to b and returns
// the extended slice.
func (v Vec) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(v.width))
	for w := range v.known {
		b = binary.LittleEndian.AppendUint64(b, v.known[w]&lastWordMask(w, v.width))
	}
	for w := range v.val {
		m := lastWordMask(w, v.width)
		b = binary.LittleEndian.AppendUint64(b, v.val[w]&v.known[w]&m)
	}
	return b
}

// EncodedLen returns the number of bytes AppendBinary emits for v.
func (v Vec) EncodedLen() int {
	return 4 + 16*len(v.known)
}

// DecodeVec decodes one vector encoded by AppendBinary from the front of
// data, returning the vector and the unconsumed remainder. It never
// panics: truncated, oversized or non-canonical input (stray bits above
// the width, val bits at unknown positions) yields an error.
func DecodeVec(data []byte) (Vec, []byte, error) {
	if len(data) < 4 {
		return Vec{}, nil, fmt.Errorf("logic: vec header truncated (%d bytes)", len(data))
	}
	width := binary.LittleEndian.Uint32(data)
	data = data[4:]
	n := (int(width) + 63) / 64
	if len(data) < 16*n {
		return Vec{}, nil, fmt.Errorf("logic: vec body truncated: width %d needs %d bytes, have %d", width, 16*n, len(data))
	}
	v := NewVec(int(width))
	for w := 0; w < n; w++ {
		v.known[w] = binary.LittleEndian.Uint64(data[8*w:])
		v.val[w] = binary.LittleEndian.Uint64(data[8*(n+w):])
		m := lastWordMask(w, v.width)
		if v.known[w]&^m != 0 || v.val[w]&^m != 0 {
			return Vec{}, nil, fmt.Errorf("logic: vec word %d has bits above width %d", w, width)
		}
		if v.val[w]&^v.known[w] != 0 {
			return Vec{}, nil, fmt.Errorf("logic: vec word %d has val bits at unknown positions", w)
		}
	}
	return v, data[16*n:], nil
}
