package logic

import (
	"math/rand"
	"testing"
)

func randVec(r *rand.Rand, width int) Vec {
	v := NewVec(width)
	for i := 0; i < width; i++ {
		v.Set(i, Value(r.Intn(3))) // Lo, Hi, X
	}
	return v
}

func TestPVecStartsAllX(t *testing.T) {
	p := NewPVec(67)
	for i := 0; i < 67; i++ {
		for l := 0; l < 64; l++ {
			if got := p.Get(i, l); got != X {
				t.Fatalf("fresh PVec bit %d lane %d = %v, want X", i, l, got)
			}
		}
	}
	a, x := p.Planes()
	if len(a) != 67 || len(x) != 67 {
		t.Fatalf("Planes lengths %d/%d, want 67/67", len(a), len(x))
	}
}

func TestPVecSetGetFoldsZ(t *testing.T) {
	p := NewPVec(4)
	p.Set(2, 13, Z)
	if got := p.Get(2, 13); got != X {
		t.Fatalf("Z stored as %v, want X", got)
	}
	p.Set(2, 13, Hi)
	p.Set(2, 13, Lo)
	if got := p.Get(2, 13); got != Lo {
		t.Fatalf("Lo after Hi = %v", got)
	}
	a, x := p.Planes()
	for i := range a {
		if a[i]&x[i] != 0 {
			t.Fatalf("plane invariant violated at bit %d", i)
		}
	}
}

func TestPVecLaneRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p := NewPVec(37)
	var want [64]Vec
	for l := 0; l < 64; l++ {
		want[l] = randVec(r, 37)
		p.SetLane(l, want[l])
	}
	for l := 0; l < 64; l++ {
		if got := p.Lane(l); !got.Equal(want[l]) {
			t.Fatalf("lane %d: got %s want %s", l, got, want[l])
		}
	}
	// Lanes are independent: rewriting one must not disturb the others.
	p.SetLane(17, randVec(r, 37))
	for l := 0; l < 64; l++ {
		if l == 17 {
			continue
		}
		if got := p.Lane(l); !got.Equal(want[l]) {
			t.Fatalf("lane %d disturbed by SetLane(17)", l)
		}
	}
}

func TestPVecSubsetLane(t *testing.T) {
	p := NewPVec(8)
	v := MustVec("0110X01X")
	p.SetLane(5, v)
	if !p.SubsetLane(5, v) {
		t.Fatal("lane is not a subset of itself")
	}
	allX := NewVec(8)
	if !p.SubsetLane(5, allX) {
		t.Fatal("lane is not a subset of all-X")
	}
	// c known where lane is X: not covered.
	c := MustVec("0110001X")
	if p.SubsetLane(5, c) {
		t.Fatal("X lane bit covered by known conservative bit")
	}
	// c disagreeing on a known bit: not covered.
	c2 := MustVec("1110X01X")
	if p.SubsetLane(5, c2) {
		t.Fatal("disagreeing known bit reported covered")
	}
	// The oracle: SubsetLane must equal Vec.Subset on the unpacked lane.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		lv, cv := randVec(r, 8), randVec(r, 8)
		p.SetLane(3, lv)
		if got, want := p.SubsetLane(3, cv), lv.Subset(cv); got != want {
			t.Fatalf("SubsetLane(%s, %s) = %v, Vec.Subset = %v", lv, cv, got, want)
		}
	}
}

func TestPVecMergeLane(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := NewPVec(16)
	for trial := 0; trial < 200; trial++ {
		a, b := randVec(r, 16), randVec(r, 16)
		p.SetLane(9, a)
		other := randVec(r, 16)
		p.SetLane(10, other)
		p.MergeLane(9, b)
		if got, want := p.Lane(9), a.Merge(b); !got.Equal(want) {
			t.Fatalf("MergeLane(%s, %s) = %s, want %s", a, b, got, want)
		}
		if !p.Lane(10).Equal(other) {
			t.Fatal("MergeLane disturbed a neighbouring lane")
		}
	}
}

func TestPVecCopyLanes(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	src, dst := NewPVec(12), NewPVec(12)
	var sv, dv [64]Vec
	for l := 0; l < 64; l++ {
		sv[l], dv[l] = randVec(r, 12), randVec(r, 12)
		src.SetLane(l, sv[l])
		dst.SetLane(l, dv[l])
	}
	mask := uint64(0xF0F0_0FF0_AAAA_5555)
	dst.CopyLanes(src, mask)
	for l := 0; l < 64; l++ {
		want := dv[l]
		if mask>>uint(l)&1 == 1 {
			want = sv[l]
		}
		if got := dst.Lane(l); !got.Equal(want) {
			t.Fatalf("lane %d after CopyLanes: got %s want %s", l, got, want)
		}
	}
}

// FuzzPVecRoundTrip packs an arbitrary value string into an arbitrary lane
// and checks the unpack reproduces it (with Z folded to X), the plane
// invariant holds, and a neighbouring lane is untouched.
func FuzzPVecRoundTrip(f *testing.F) {
	f.Add("01X10", uint8(0))
	f.Add("XXXX", uint8(63))
	f.Add("10Z1", uint8(31))
	f.Add("", uint8(7))
	f.Fuzz(func(t *testing.T, s string, lane uint8) {
		v, err := VecFromString(s)
		if err != nil {
			t.Skip()
		}
		l := int(lane % 64)
		p := NewPVec(v.Width())
		sentinel := (l + 1) % 64
		p.SetLane(l, v)
		got := p.Lane(l)
		if !got.Equal(v) {
			t.Fatalf("round trip: packed %s, unpacked %s", v, got)
		}
		a, x := p.Planes()
		for i := range a {
			if a[i]&x[i] != 0 {
				t.Fatalf("plane invariant violated at bit %d", i)
			}
		}
		for i := 0; i < v.Width(); i++ {
			if p.Get(i, sentinel) != X {
				t.Fatalf("neighbouring lane %d disturbed at bit %d", sentinel, i)
			}
		}
	})
}
