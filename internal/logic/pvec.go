package logic

import "fmt"

// PVec is a lane-packed plane vector: the value of one bit position across
// 64 independent simulation lanes, for every bit of a fixed-width vector.
// It is the batch engine's transposed counterpart of Vec — where Vec packs
// the bits of one scenario into machine words, PVec packs one bit of 64
// scenarios into a machine word, so a single bitwise formula evaluates a
// gate for every lane at once.
//
// Bit position i is stored as two lane words: a[i] has lane bit l set when
// lane l holds a known 1, x[i] has it set when lane l is unknown. A lane
// with neither bit set holds a known 0; a&x == 0 is an invariant every
// operation preserves. Z folds to X on pack, matching the scalar engine's
// gate-input canonicalization (logic.in) — the batch engine does not model
// Z distinctness.
//
// The zero PVec has width 0. Use NewPVec to construct one.
type PVec struct {
	width int
	a     []uint64 // lane bit set = known 1
	x     []uint64 // lane bit set = unknown
}

// NewPVec returns a plane vector of the given width with every lane of
// every bit unknown (the all-X reset state of a fresh simulator).
func NewPVec(width int) PVec {
	if width < 0 {
		panic("logic: negative PVec width")
	}
	p := PVec{width: width, a: make([]uint64, width), x: make([]uint64, width)}
	for i := range p.x {
		p.x[i] = ^uint64(0)
	}
	return p
}

// Width returns the number of bit positions in p.
func (p PVec) Width() int { return p.width }

// Planes returns the raw lane planes of p: a[i]/x[i] are the known-1 and
// unknown lane words of bit i. The slices alias internal state; hot paths
// index them directly instead of going through Get/Set.
func (p PVec) Planes() (a, x []uint64) { return p.a, p.x }

func (p PVec) check(i, lane int) {
	if i < 0 || i >= p.width || lane < 0 || lane > 63 {
		//symsim:allow SA001 panic formatting runs only on out-of-range programmer error, never in steady state
		panic(fmt.Sprintf("logic: PVec bit %d lane %d out of range (width %d)", i, lane, p.width))
	}
}

// Get returns bit i of lane lane.
//
//symsim:hotpath
func (p PVec) Get(i, lane int) Value {
	p.check(i, lane)
	m := uint64(1) << uint(lane)
	if p.a[i]&m != 0 {
		return Hi
	}
	if p.x[i]&m != 0 {
		return X
	}
	return Lo
}

// Set assigns bit i of lane lane. Z is stored as X.
//
//symsim:hotpath
func (p *PVec) Set(i, lane int, bit Value) {
	p.check(i, lane)
	m := uint64(1) << uint(lane)
	p.a[i] &^= m
	p.x[i] &^= m
	switch in(bit) {
	case Hi:
		p.a[i] |= m
	case Lo:
	default:
		p.x[i] |= m
	}
}

// SetLane packs the scalar vector v into lane lane. Widths must match.
func (p *PVec) SetLane(lane int, v Vec) {
	if v.Width() != p.width {
		panic(fmt.Sprintf("logic: SetLane width mismatch %d vs %d", v.Width(), p.width))
	}
	for i := 0; i < p.width; i++ {
		p.Set(i, lane, v.Get(i))
	}
}

// Lane unpacks lane lane into a fresh scalar vector.
func (p PVec) Lane(lane int) Vec {
	v := NewVec(p.width)
	p.LaneInto(&v, lane)
	return v
}

// LaneInto unpacks lane lane into the pre-sized vector dst without
// allocating. Widths must match.
func (p PVec) LaneInto(dst *Vec, lane int) {
	if dst.Width() != p.width {
		panic(fmt.Sprintf("logic: LaneInto width mismatch %d vs %d", dst.Width(), p.width))
	}
	for i := 0; i < p.width; i++ {
		dst.Set(i, p.Get(i, lane))
	}
}

// SubsetLane reports whether lane lane is covered by the conservative
// scalar vector c — the per-lane form of Vec.Subset. Widths must match.
func (p PVec) SubsetLane(lane int, c Vec) bool {
	if c.Width() != p.width {
		panic(fmt.Sprintf("logic: SubsetLane width mismatch %d vs %d", c.Width(), p.width))
	}
	m := uint64(1) << uint(lane)
	for i := 0; i < p.width; i++ {
		cb := c.Get(i)
		if !cb.IsKnown() {
			continue
		}
		if p.x[i]&m != 0 {
			return false // X in the lane is not covered by a known bit of c
		}
		if (cb == Hi) != (p.a[i]&m != 0) {
			return false
		}
	}
	return true
}

// MergeLane folds the scalar vector o into lane lane: the lane becomes the
// least conservative vector covering both its old value and o (agreeing
// known bits kept, all others X). Widths must match.
func (p *PVec) MergeLane(lane int, o Vec) {
	if o.Width() != p.width {
		panic(fmt.Sprintf("logic: MergeLane width mismatch %d vs %d", o.Width(), p.width))
	}
	m := uint64(1) << uint(lane)
	for i := 0; i < p.width; i++ {
		ob := o.Get(i)
		agree := ob.IsKnown() && p.x[i]&m == 0 && (ob == Hi) == (p.a[i]&m != 0)
		if !agree {
			p.a[i] &^= m
			p.x[i] |= m
		}
	}
}

// CopyLanes overwrites the lanes selected by mask with the corresponding
// lanes of src, leaving every other lane untouched. Widths must match.
// This is the batch engine's bulk lane transplant (admission, checkpoint
// restore across plane vectors).
func (p *PVec) CopyLanes(src PVec, mask uint64) {
	if src.width != p.width {
		//symsim:allow SA001 panic formatting runs only on width-mismatch programmer error
		panic(fmt.Sprintf("logic: CopyLanes width mismatch %d vs %d", src.width, p.width))
	}
	for i := range p.a {
		p.a[i] = p.a[i]&^mask | src.a[i]&mask
		p.x[i] = p.x[i]&^mask | src.x[i]&mask
	}
}
