// Package logic implements the multi-valued logic substrate used throughout
// symsim: four-valued scalars (0, 1, X, Z) with Verilog-compatible gate
// evaluation rules, densely packed ternary vectors with the subset and merge
// operations required by conservative state management, and identified
// symbolic values that carry symbol identity and taint labels (paper §3.4,
// Figure 4).
//
// The scalar rules follow IEEE 1364: an unknown (X) or high-impedance (Z)
// input contaminates a gate output unless a controlling value on another
// input determines the result (e.g. AND(0, X) = 0, OR(1, X) = 1).
package logic

import "fmt"

// Value is a four-valued logic scalar. The zero value is Lo (logic 0).
type Value uint8

const (
	// Lo is logic 0.
	Lo Value = iota
	// Hi is logic 1.
	Hi
	// X is an unknown logic value: the symbol the co-analysis propagates
	// for every application input.
	X
	// Z is high impedance. Gates treat Z inputs as X (IEEE 1364 §5.1.10);
	// Z is distinct only for tri-state modelling and formatting.
	Z
)

// String returns the Verilog literal for v: "0", "1", "x" or "z".
func (v Value) String() string {
	switch v {
	case Lo:
		return "0"
	case Hi:
		return "1"
	case X:
		return "x"
	case Z:
		return "z"
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// ValueOf converts a Verilog value character to a Value.
// Accepted runes: 0 1 x X z Z.
func ValueOf(r rune) (Value, error) {
	switch r {
	case '0':
		return Lo, nil
	case '1':
		return Hi, nil
	case 'x', 'X':
		return X, nil
	case 'z', 'Z':
		return Z, nil
	}
	return X, fmt.Errorf("logic: invalid value character %q", r)
}

// Bool returns Hi if b is true and Lo otherwise.
func Bool(b bool) Value {
	if b {
		return Hi
	}
	return Lo
}

// IsKnown reports whether v is a determined logic level (Lo or Hi).
func (v Value) IsKnown() bool { return v == Lo || v == Hi }

// in canonicalizes a gate input: Z inputs behave as X.
func in(v Value) Value {
	if v == Z {
		return X
	}
	return v
}

// Not returns the logical complement of v (X/Z map to X).
func Not(v Value) Value {
	switch in(v) {
	case Lo:
		return Hi
	case Hi:
		return Lo
	}
	return X
}

// And returns the four-valued conjunction of a and b.
// Lo is controlling: And(Lo, X) == Lo.
func And(a, b Value) Value {
	a, b = in(a), in(b)
	switch {
	case a == Lo || b == Lo:
		return Lo
	case a == Hi && b == Hi:
		return Hi
	}
	return X
}

// Or returns the four-valued disjunction of a and b.
// Hi is controlling: Or(Hi, X) == Hi.
func Or(a, b Value) Value {
	a, b = in(a), in(b)
	switch {
	case a == Hi || b == Hi:
		return Hi
	case a == Lo && b == Lo:
		return Lo
	}
	return X
}

// Xor returns the four-valued exclusive-or of a and b. Any unknown input
// makes the result unknown; there is no controlling value for XOR.
func Xor(a, b Value) Value {
	a, b = in(a), in(b)
	if !a.IsKnown() || !b.IsKnown() {
		return X
	}
	return Bool(a != b)
}

// Nand returns Not(And(a, b)).
func Nand(a, b Value) Value { return Not(And(a, b)) }

// Nor returns Not(Or(a, b)).
func Nor(a, b Value) Value { return Not(Or(a, b)) }

// Xnor returns Not(Xor(a, b)).
func Xnor(a, b Value) Value { return Not(Xor(a, b)) }

// Buf returns v with Z canonicalized to X, the behaviour of a buffer
// primitive driving a strongly-driven net.
func Buf(v Value) Value { return in(v) }

// Mux returns a when sel is Lo, b when sel is Hi. When sel is unknown the
// result is the merge of a and b: their common value if they agree, X
// otherwise. This is less pessimistic than plain X and matches the
// ternary-extension mux used by X-propagation-aware simulators.
func Mux(sel, a, b Value) Value {
	switch in(sel) {
	case Lo:
		return in(a)
	case Hi:
		return in(b)
	}
	a, b = in(a), in(b)
	if a == b && a.IsKnown() {
		return a
	}
	return X
}

// MergeValue returns the least conservative value covering both a and b:
// the common value when they agree and are known, X otherwise. It is the
// join of the ternary lattice used for conservative state generation.
func MergeValue(a, b Value) Value {
	a, b = in(a), in(b)
	if a == b && a.IsKnown() {
		return a
	}
	return X
}

// Covers reports whether value c is at least as conservative as e: c covers
// e iff c is X, or both are the same known value. It is the scalar form of
// the subset test of paper Algorithm 1 line 21.
func Covers(c, e Value) bool {
	c, e = in(c), in(e)
	return c == X || c == e
}
