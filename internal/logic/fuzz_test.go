package logic

import "testing"

// FuzzVecFromString: any input either errors or round-trips through
// String, and never panics. Run with `go test -fuzz FuzzVecFromString`;
// the seed corpus runs as part of the normal test suite.
func FuzzVecFromString(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "x", "z", "01xz", "1_0", "0x1x0x1x0x1x0x1x0x",
		"0000000000000000000000000000000000000000000000000000000000000000111"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := VecFromString(s)
		if err != nil {
			return
		}
		rt, err := VecFromString(v.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", v.String(), err)
		}
		if !rt.Equal(v) {
			t.Fatalf("round trip changed %q -> %q", v.String(), rt.String())
		}
	})
}

// FuzzVecOps: subset/merge/constrain never panic for same-width vectors
// and keep their lattice relationships.
func FuzzVecOps(f *testing.F) {
	f.Add("01x", "x10")
	f.Add("0", "1")
	f.Add("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
		"000000000000000000000000000000000000000000000000000000000000000000000")
	f.Fuzz(func(t *testing.T, as, bs string) {
		a, errA := VecFromString(as)
		b, errB := VecFromString(bs)
		if errA != nil || errB != nil || a.Width() != b.Width() || a.Width() == 0 {
			return
		}
		m := a.Merge(b)
		if !a.Subset(m) || !b.Subset(m) {
			t.Fatalf("merge of %q and %q -> %q does not cover", as, bs, m.String())
		}
		c := a.Clone()
		c.ConstrainTo(b)
		for i := 0; i < c.Width(); i++ {
			if bb := b.Get(i); bb.IsKnown() && c.Get(i) != bb {
				t.Fatalf("constrain lost bit %d", i)
			}
		}
	})
}
