package logic

import (
	"bytes"
	"testing"
)

func TestVecCodecRoundTrip(t *testing.T) {
	for _, s := range []string{"", "0", "1", "x", "01x", "xxxxxxxx",
		"1010x01x10zx0011", "x1"} {
		v := MustVec(s)
		enc := v.AppendBinary(nil)
		if len(enc) != v.EncodedLen() {
			t.Errorf("%q: encoded %d bytes, EncodedLen says %d", s, len(enc), v.EncodedLen())
		}
		dec, rest, err := DecodeVec(enc)
		if err != nil {
			t.Fatalf("%q: decode: %v", s, err)
		}
		if len(rest) != 0 {
			t.Errorf("%q: %d unconsumed bytes", s, len(rest))
		}
		if !dec.Equal(v) {
			t.Errorf("%q: round-trip mismatch: got %s", s, dec)
		}
		if re := dec.AppendBinary(nil); !bytes.Equal(re, enc) {
			t.Errorf("%q: re-encode not byte-identical", s)
		}
	}
}

func TestVecCodecWideRoundTrip(t *testing.T) {
	v := NewVec(200)
	for i := 0; i < 200; i += 3 {
		v.Set(i, Hi)
	}
	for i := 1; i < 200; i += 7 {
		v.Set(i, Lo)
	}
	enc := v.AppendBinary(nil)
	dec, rest, err := DecodeVec(enc)
	if err != nil || len(rest) != 0 || !dec.Equal(v) {
		t.Fatalf("wide round-trip failed: err=%v rest=%d", err, len(rest))
	}
}

func TestVecCodecRejectsMalformed(t *testing.T) {
	v := MustVec("1x0")
	enc := v.AppendBinary(nil)

	// Truncations at every prefix length must error, never panic.
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeVec(enc[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	// A stray bit above the width is non-canonical.
	bad := append([]byte(nil), enc...)
	bad[4] |= 0x08 // known bit 3 of a 3-bit vector
	if _, _, err := DecodeVec(bad); err == nil {
		t.Error("stray known bit above width accepted")
	}
	// A val bit at an unknown position is non-canonical.
	bad = append([]byte(nil), enc...)
	bad[12] |= 0x02 // val bit 1, but bit 1 is X
	if _, _, err := DecodeVec(bad); err == nil {
		t.Error("val bit at unknown position accepted")
	}
	// A huge width with no body must error without allocating the body.
	huge := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, _, err := DecodeVec(huge); err == nil {
		t.Error("huge truncated width accepted")
	}
}
