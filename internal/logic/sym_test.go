package logic

import "testing"

func TestSymFigure4(t *testing.T) {
	// Paper Figure 4: a circuit input fans out, is complemented on one
	// path, and both paths reconverge at an XOR gate. With identified
	// propagation the XOR output is determined; with anonymous symbols it
	// must be X.
	s := SymInput(1, 0)

	// Identified: XOR(s, s) = 0, XOR(s, ~s) = 1.
	if got := SymXor(s, s); got.Value() != Lo {
		t.Errorf("XOR(s, s) = %v, want 0", got)
	}
	if got := SymXor(s, SymNot(s)); got.Value() != Hi {
		t.Errorf("XOR(s, ~s) = %v, want 1", got)
	}

	// Anonymous: the same reconvergence cannot be simplified.
	a := SymAnon(0)
	if got := SymXor(a, a); got.Value() != X {
		t.Errorf("anonymous XOR(x, x) = %v, want x", got)
	}
}

func TestSymIdentities(t *testing.T) {
	s := SymInput(7, 0)
	ns := SymNot(s)
	if v := SymAnd(s, ns); v.Value() != Lo {
		t.Errorf("AND(s, ~s) = %v, want 0", v)
	}
	if v := SymOr(s, ns); v.Value() != Hi {
		t.Errorf("OR(s, ~s) = %v, want 1", v)
	}
	if v := SymAnd(s, s); !v.SameSymbol(s) {
		t.Errorf("AND(s, s) = %v, want s", v)
	}
	if v := SymOr(s, s); !v.SameSymbol(s) {
		t.Errorf("OR(s, s) = %v, want s", v)
	}
	if v := SymNot(SymNot(s)); !v.SameSymbol(s) {
		t.Errorf("~~s = %v, want s", v)
	}
}

func TestSymConstantAlgebra(t *testing.T) {
	s := SymInput(3, 0)
	one, zero := SymConst(Hi), SymConst(Lo)
	if v := SymAnd(s, zero); v.Value() != Lo {
		t.Errorf("AND(s, 0) = %v", v)
	}
	if v := SymAnd(s, one); !v.SameSymbol(s) {
		t.Errorf("AND(s, 1) = %v, want s", v)
	}
	if v := SymOr(s, one); v.Value() != Hi {
		t.Errorf("OR(s, 1) = %v", v)
	}
	if v := SymOr(s, zero); !v.SameSymbol(s) {
		t.Errorf("OR(s, 0) = %v, want s", v)
	}
	if v := SymXor(s, zero); !v.SameSymbol(s) {
		t.Errorf("XOR(s, 0) = %v, want s", v)
	}
	if v := SymXor(s, one); !v.SameSymbol(SymNot(s)) {
		t.Errorf("XOR(s, 1) = %v, want ~s", v)
	}
	if v := SymXor(one, one); v.Value() != Lo {
		t.Errorf("XOR(1, 1) = %v", v)
	}
	if v := SymXor(one, zero); v.Value() != Hi {
		t.Errorf("XOR(1, 0) = %v", v)
	}
}

func TestSymDistinctSymbolsDoNotSimplify(t *testing.T) {
	s1, s2 := SymInput(1, 0), SymInput(2, 0)
	if v := SymXor(s1, s2); v.Value() != X {
		t.Errorf("XOR(s1, s2) = %v, want x", v)
	}
	if v := SymAnd(s1, s2); v.Value() != X {
		t.Errorf("AND(s1, s2) = %v, want x", v)
	}
}

func TestSymTaintPropagation(t *testing.T) {
	const secret, public = 1 << 0, 1 << 1
	s := SymInput(1, secret)
	p := SymInput(2, public)

	// Taint flows through every operation, including ones whose logic
	// value is determined (conservative information-flow rule of [7]).
	if v := SymAnd(s, SymConst(Lo)); v.Taint&secret == 0 {
		t.Error("taint lost through AND with controlling 0")
	}
	if v := SymXor(s, s); v.Taint&secret == 0 {
		t.Error("taint lost through self-XOR")
	}
	v := SymOr(s, p)
	if v.Taint != secret|public {
		t.Errorf("taint union = %#x, want %#x", v.Taint, uint64(secret|public))
	}
	if v := SymMux(p, s, SymConst(Lo)); v.Taint&public == 0 || v.Taint&secret == 0 {
		t.Errorf("mux taint = %#x", v.Taint)
	}
}

func TestSymMux(t *testing.T) {
	s := SymInput(4, 0)
	if v := SymMux(SymConst(Lo), s, SymConst(Hi)); !v.SameSymbol(s) {
		t.Errorf("mux sel=0 = %v", v)
	}
	if v := SymMux(SymConst(Hi), s, SymConst(Hi)); v.Value() != Hi {
		t.Errorf("mux sel=1 = %v", v)
	}
	// Unknown select with identical branches resolves.
	if v := SymMux(SymAnon(0), s, s); !v.SameSymbol(s) {
		t.Errorf("mux X sel, equal branches = %v", v)
	}
	// Unknown select with different branches is unknown.
	if v := SymMux(SymAnon(0), s, SymNot(s)); v.Value() != X {
		t.Errorf("mux X sel, different branches = %v", v)
	}
}

func TestSymString(t *testing.T) {
	s := SymInput(5, 0)
	if s.String() != "s5" || SymNot(s).String() != "~s5" {
		t.Errorf("String: %q, %q", s, SymNot(s))
	}
	if SymConst(Lo).String() != "0" || SymConst(Hi).String() != "1" || SymAnon(0).String() != "x" {
		t.Error("const String broken")
	}
}

// Property: collapsing to four-valued logic commutes with evaluation —
// Sym operations are never less conservative than their Value analogues
// except where identity information legitimately sharpens the result.
func TestSymSoundAgainstValueSemantics(t *testing.T) {
	syms := []Sym{SymConst(Lo), SymConst(Hi), SymAnon(0), SymInput(1, 0), SymNot(SymInput(1, 0)), SymInput(2, 0)}
	type op struct {
		name string
		s    func(a, b Sym) Sym
		v    func(a, b Value) Value
	}
	for _, o := range []op{{"and", SymAnd, And}, {"or", SymOr, Or}, {"xor", SymXor, Xor}} {
		for _, a := range syms {
			for _, b := range syms {
				got := o.s(a, b).Value()
				want := o.v(a.Value(), b.Value())
				// The identified result must refine the anonymous one:
				// equal, or known where anonymous is X.
				if want.IsKnown() && got != want {
					t.Errorf("%s(%v, %v) = %v, anonymous says %v", o.name, a, b, got, want)
				}
				if !want.IsKnown() && got.IsKnown() {
					// Sharpening is only legal via identity.
					if !(a.kind == symVar && b.kind == symVar && a.id == b.id) {
						t.Errorf("%s(%v, %v) sharpened to %v without identity", o.name, a, b, got)
					}
				}
			}
		}
	}
}
