package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a fixed-width ternary vector (each bit is Lo, Hi or X) stored as
// two packed bitplanes: known marks determined bits, val holds their level.
// Bit i of the vector lives at word i/64, bit i%64; bit 0 is the least
// significant bit. The representation keeps val bits zero wherever known is
// zero, so two Vecs are bit-identical iff they are semantically equal —
// which makes Equal, Subset and hashing cheap. Vec is the machine-state
// currency of the Conservative State Manager: subset tests and merges over
// thousands of flip-flops reduce to a handful of word operations.
//
// The zero Vec has width 0. Use NewVec or VecFromString to construct one.
type Vec struct {
	width int
	known []uint64 // 1 = bit is a determined 0/1
	val   []uint64 // level of known bits; 0 where !known
}

// NewVec returns an all-X vector of the given width.
func NewVec(width int) Vec {
	if width < 0 {
		panic("logic: negative Vec width")
	}
	n := (width + 63) / 64
	return Vec{width: width, known: make([]uint64, n), val: make([]uint64, n)}
}

// NewVecUint64 returns a fully-known vector of the given width holding v.
// Bits of v above width are discarded.
func NewVecUint64(width int, v uint64) Vec {
	vec := NewVec(width)
	vec.SetUint64(v)
	return vec
}

// VecFromString parses a vector from its Verilog-style bit string, most
// significant bit first, e.g. "0XX1". Underscores are ignored.
func VecFromString(s string) (Vec, error) {
	s = strings.ReplaceAll(s, "_", "")
	v := NewVec(len(s))
	for i, r := range s {
		bit, err := ValueOf(r)
		if err != nil {
			return Vec{}, fmt.Errorf("logic: bad vector literal %q: %v", s, err)
		}
		if bit == Z {
			bit = X
		}
		v.Set(len(s)-1-i, bit)
	}
	return v, nil
}

// MustVec is VecFromString that panics on malformed input. It is intended
// for tests and compile-time-constant-like literals.
func MustVec(s string) Vec {
	v, err := VecFromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Width returns the number of bits in v.
func (v Vec) Width() int { return v.width }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	c := Vec{width: v.width, known: make([]uint64, len(v.known)), val: make([]uint64, len(v.val))}
	copy(c.known, v.known)
	copy(c.val, v.val)
	return c
}

func (v Vec) check(i int) {
	if i < 0 || i >= v.width {
		//symsim:allow SA001 panic formatting runs only on out-of-range programmer error, never in steady state
		panic(fmt.Sprintf("logic: Vec bit %d out of range [0,%d)", i, v.width))
	}
}

// Get returns bit i of v (Lo, Hi or X).
//
//symsim:hotpath
func (v Vec) Get(i int) Value {
	v.check(i)
	w, b := i/64, uint(i%64)
	if v.known[w]>>b&1 == 0 {
		return X
	}
	return Value(v.val[w] >> b & 1)
}

// Set assigns bit i of v. Z is stored as X.
//
//symsim:hotpath
func (v *Vec) Set(i int, bit Value) {
	v.check(i)
	w, b := i/64, uint(i%64)
	mask := uint64(1) << b
	switch in(bit) {
	case Lo:
		v.known[w] |= mask
		v.val[w] &^= mask
	case Hi:
		v.known[w] |= mask
		v.val[w] |= mask
	default:
		v.known[w] &^= mask
		v.val[w] &^= mask
	}
}

// SetUint64 assigns the low 64 bits of v from u and marks them known; bits
// of u above the width are ignored, bits of v above 64 become known zeros.
func (v *Vec) SetUint64(u uint64) {
	for i := 0; i < v.width; i++ {
		v.Set(i, Bool(i < 64 && u>>uint(i)&1 == 1))
	}
}

// SetAllX makes every bit of v unknown.
func (v *Vec) SetAllX() {
	for i := range v.known {
		v.known[i] = 0
		v.val[i] = 0
	}
}

// IsAllKnown reports whether every bit of v is determined.
func (v Vec) IsAllKnown() bool {
	return v.CountX() == 0
}

// CountX returns the number of unknown bits in v.
func (v Vec) CountX() int {
	n := 0
	for w, k := range v.known {
		width := 64
		if w == len(v.known)-1 && v.width%64 != 0 {
			width = v.width % 64
		}
		n += width - bits.OnesCount64(k&lastWordMask(w, v.width))
	}
	return n
}

func lastWordMask(w, width int) uint64 {
	if (w+1)*64 <= width {
		return ^uint64(0)
	}
	rem := uint(width - w*64)
	return (uint64(1) << rem) - 1
}

// Uint64 returns the value of v as an unsigned integer. ok is false when
// any bit is unknown or the width exceeds 64.
//
//symsim:hotpath
func (v Vec) Uint64() (u uint64, ok bool) {
	if v.width > 64 || !v.IsAllKnown() {
		return 0, false
	}
	if len(v.val) == 0 {
		return 0, true
	}
	return v.val[0] & lastWordMask(0, v.width), true
}

// Equal reports whether v and o have identical width and bit values
// (X compares equal only to X).
func (v Vec) Equal(o Vec) bool {
	if v.width != o.width {
		return false
	}
	for i := range v.known {
		m := lastWordMask(i, v.width)
		if v.known[i]&m != o.known[i]&m || v.val[i]&m != o.val[i]&m {
			return false
		}
	}
	return true
}

// Subset reports whether v is covered by the conservative vector c: every
// bit of c is X or agrees with the corresponding known bit of v. A bit that
// is X in v but known in c is NOT covered (the unknown in v denotes more
// behaviours than c admits). This is the strict-subset test of paper
// Algorithm 1 line 21 (Subset is true also when the vectors are equal;
// callers that need strictness combine it with !Equal).
func (v Vec) Subset(c Vec) bool {
	if v.width != c.width {
		return false
	}
	for i := range v.known {
		m := lastWordMask(i, v.width)
		// Bits where c is known must be known in v and agree.
		ck := c.known[i] & m
		if ck&^v.known[i] != 0 {
			return false
		}
		if (v.val[i]^c.val[i])&ck != 0 {
			return false
		}
	}
	return true
}

// Merge returns the least conservative vector covering both v and o:
// agreeing known bits are kept, all others become X. It panics when widths
// differ. This is the conservative superstate construction of paper
// Algorithm 1 line 22.
func (v Vec) Merge(o Vec) Vec {
	if v.width != o.width {
		panic(fmt.Sprintf("logic: Merge width mismatch %d vs %d", v.width, o.width))
	}
	out := NewVec(v.width)
	for i := range v.known {
		agree := v.known[i] & o.known[i] &^ (v.val[i] ^ o.val[i])
		out.known[i] = agree
		out.val[i] = v.val[i] & agree
	}
	return out
}

// CopyFrom overwrites v with the contents of o in place, without
// allocating. It panics when widths differ. The simulation engine's memory
// write path uses it to keep steady-state stepping allocation-free.
//
//symsim:hotpath
func (v *Vec) CopyFrom(o Vec) {
	if v.width != o.width {
		//symsim:allow SA001 panic formatting runs only on width-mismatch programmer error
		panic(fmt.Sprintf("logic: CopyFrom width mismatch %d vs %d", v.width, o.width))
	}
	copy(v.known, o.known)
	copy(v.val, o.val)
}

// MergeInPlace folds o into v without allocating: v becomes Merge(v, o),
// the least conservative vector covering both. It panics when widths
// differ.
//
//symsim:hotpath
func (v *Vec) MergeInPlace(o Vec) {
	if v.width != o.width {
		//symsim:allow SA001 panic formatting runs only on width-mismatch programmer error
		panic(fmt.Sprintf("logic: MergeInPlace width mismatch %d vs %d", v.width, o.width))
	}
	for i := range v.known {
		agree := v.known[i] & o.known[i] &^ (v.val[i] ^ o.val[i])
		v.known[i] = agree
		v.val[i] &= agree
	}
}

// CopyBitsFrom overwrites n bits of v starting at dstOff with the n bits
// of src starting at srcOff, without allocating. Both planes are moved in
// word-sized chunks, so restoring a few thousand memory bits costs a few
// dozen word operations instead of per-bit Get/Set pairs. Out-of-range
// spans panic.
//
//symsim:hotpath
func (v *Vec) CopyBitsFrom(dstOff int, src Vec, srcOff, n int) {
	if n < 0 || dstOff < 0 || srcOff < 0 || dstOff+n > v.width || srcOff+n > src.width {
		//symsim:allow SA001 panic formatting runs only on out-of-range programmer error
		panic(fmt.Sprintf("logic: CopyBitsFrom [%d,%d)<-[%d,%d) out of range (dst %d, src %d bits)", dstOff, dstOff+n, srcOff, srcOff+n, v.width, src.width))
	}
	for n > 0 {
		dw, db := dstOff/64, uint(dstOff%64)
		c := 64 - int(db)
		if c > n {
			c = n
		}
		mask := chunkMask(c)
		k := extractBits(src.known, srcOff, c)
		x := extractBits(src.val, srcOff, c)
		v.known[dw] = v.known[dw]&^(mask<<db) | k<<db
		v.val[dw] = v.val[dw]&^(mask<<db) | x<<db
		dstOff += c
		srcOff += c
		n -= c
	}
}

// chunkMask returns a mask of the low c bits, 1 <= c <= 64.
func chunkMask(c int) uint64 {
	if c == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(c) - 1
}

// extractBits reads c <= 64 bits starting at bit off from a packed plane.
func extractBits(words []uint64, off, c int) uint64 {
	w, b := off/64, uint(off%64)
	u := words[w] >> b
	if int(b)+c > 64 {
		u |= words[w+1] << (64 - b)
	}
	return u & chunkMask(c)
}

// ConstrainTo intersects v with the constraint vector c in place: wherever c
// holds a known bit, v adopts it. Constraint files (paper §3.3, [15]) use
// this to trim over-approximation from merged conservative states.
func (v *Vec) ConstrainTo(c Vec) {
	if v.width != c.width {
		panic(fmt.Sprintf("logic: ConstrainTo width mismatch %d vs %d", v.width, c.width))
	}
	for i := range v.known {
		v.known[i] |= c.known[i]
		v.val[i] = v.val[i]&^c.known[i] | c.val[i]
	}
}

// String returns the Verilog-style bit string of v, MSB first.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.width)
	for i := v.width - 1; i >= 0; i-- {
		sb.WriteString(v.Get(i).String())
	}
	return sb.String()
}

// HammingKnown returns the number of bit positions where v and o are both
// known yet disagree, plus the number of positions where exactly one is
// known. It is the distance metric used by the clustered merge policy to
// pick which existing conservative state a new state should join.
func (v Vec) HammingKnown(o Vec) int {
	if v.width != o.width {
		panic(fmt.Sprintf("logic: HammingKnown width mismatch %d vs %d", v.width, o.width))
	}
	d := 0
	for i := range v.known {
		m := lastWordMask(i, v.width)
		both := v.known[i] & o.known[i] & m
		d += bits.OnesCount64((v.val[i] ^ o.val[i]) & both)
		d += bits.OnesCount64((v.known[i] ^ o.known[i]) & m)
	}
	return d
}
