// Package rtl is a structural hardware-construction DSL that elaborates
// word-level register-transfer descriptions into primitive-gate netlists.
// It plays the role Synopsys Design Compiler plays in the paper's flow:
// the three evaluation processors are described with this package and
// "synthesized" into the gate-level form the symbolic co-analysis needs.
// Everything elaborates to 1- and 2-input cells, 2:1 muxes and DFFs, so
// resulting gate counts are comparable to a technology-mapped netlist.
package rtl

import (
	"fmt"

	"symsim/internal/logic"
	"symsim/internal/netlist"
)

// Bus is an ordered set of nets forming a word; index 0 is bit 0 (LSB).
type Bus []netlist.NetID

// Module wraps a netlist under construction together with the global
// clock/reset infrastructure every sequential element shares.
type Module struct {
	N *netlist.Netlist

	// Clk and Rstn are the primary clock and active-low reset inputs.
	Clk  netlist.NetID
	Rstn netlist.NetID

	zero netlist.NetID
	one  netlist.NetID
	tmp  int
}

// NewModule creates a module with clk/rst_n inputs and constant nets.
func NewModule(name string) *Module {
	n := netlist.New(name)
	m := &Module{N: n}
	m.Clk = n.AddInput("clk")
	m.Rstn = n.AddInput("rst_n")
	m.zero = n.AddNet("tie0")
	n.AddGate(netlist.KindConst0, m.zero)
	m.one = n.AddNet("tie1")
	n.AddGate(netlist.KindConst1, m.one)
	return m
}

// Lo returns the constant-0 net.
func (m *Module) Lo() netlist.NetID { return m.zero }

// Hi returns the constant-1 net.
func (m *Module) Hi() netlist.NetID { return m.one }

func (m *Module) fresh(prefix string) netlist.NetID {
	m.tmp++
	return m.N.AddNet(fmt.Sprintf("%s$%d", prefix, m.tmp))
}

// Input declares a width-bit primary input bus named name (bit i is
// "name[i]"; a 1-bit bus is just "name").
func (m *Module) Input(name string, width int) Bus {
	b := make(Bus, width)
	for i := range b {
		b[i] = m.N.AddInput(busBit(name, width, i))
	}
	return b
}

// Output marks every bit of b as a primary output.
func (m *Module) Output(name string, b Bus) {
	for _, id := range b {
		m.N.MarkOutput(id)
	}
	_ = name
}

// Named gives stable names to the bits of b by driving fresh named nets
// with buffers. Used for nets the co-analysis must find by name (monitored
// control signals, PC bits).
func (m *Module) Named(name string, b Bus) Bus {
	out := make(Bus, len(b))
	for i := range b {
		out[i] = m.N.AddNet(busBit(name, len(b), i))
		m.N.AddGate(netlist.KindBuf, out[i], b[i])
	}
	return out
}

func busBit(name string, width, i int) string {
	if width == 1 {
		return name
	}
	return fmt.Sprintf("%s[%d]", name, i)
}

// Const returns a width-bit constant bus holding val.
func (m *Module) Const(width int, val uint64) Bus {
	b := make(Bus, width)
	for i := range b {
		if val>>uint(i)&1 == 1 {
			b[i] = m.one
		} else {
			b[i] = m.zero
		}
	}
	return b
}

// --- Bit-level operators ---

func (m *Module) gate2(kind netlist.GateKind, a, b netlist.NetID) netlist.NetID {
	out := m.fresh(kind.String())
	m.N.AddGate(kind, out, a, b)
	return out
}

// NotBit returns !a.
func (m *Module) NotBit(a netlist.NetID) netlist.NetID {
	out := m.fresh("NOT")
	m.N.AddGate(netlist.KindNot, out, a)
	return out
}

// AndBit returns a & b.
func (m *Module) AndBit(a, b netlist.NetID) netlist.NetID { return m.gate2(netlist.KindAnd, a, b) }

// OrBit returns a | b.
func (m *Module) OrBit(a, b netlist.NetID) netlist.NetID { return m.gate2(netlist.KindOr, a, b) }

// XorBit returns a ^ b.
func (m *Module) XorBit(a, b netlist.NetID) netlist.NetID { return m.gate2(netlist.KindXor, a, b) }

// XnorBit returns !(a ^ b).
func (m *Module) XnorBit(a, b netlist.NetID) netlist.NetID { return m.gate2(netlist.KindXnor, a, b) }

// NandBit returns !(a & b).
func (m *Module) NandBit(a, b netlist.NetID) netlist.NetID { return m.gate2(netlist.KindNand, a, b) }

// NorBit returns !(a | b).
func (m *Module) NorBit(a, b netlist.NetID) netlist.NetID { return m.gate2(netlist.KindNor, a, b) }

// MuxBit returns sel ? b : a.
func (m *Module) MuxBit(sel, a, b netlist.NetID) netlist.NetID {
	out := m.fresh("MUX2")
	m.N.AddGate(netlist.KindMux2, out, sel, a, b)
	return out
}

// AndTree reduces the given bits with a balanced AND tree (1 for empty).
func (m *Module) AndTree(bits ...netlist.NetID) netlist.NetID {
	return m.tree(netlist.KindAnd, m.one, bits)
}

// OrTree reduces the given bits with a balanced OR tree (0 for empty).
func (m *Module) OrTree(bits ...netlist.NetID) netlist.NetID {
	return m.tree(netlist.KindOr, m.zero, bits)
}

func (m *Module) tree(kind netlist.GateKind, empty netlist.NetID, bits []netlist.NetID) netlist.NetID {
	switch len(bits) {
	case 0:
		return empty
	case 1:
		return bits[0]
	}
	mid := len(bits) / 2
	return m.gate2(kind, m.tree(kind, empty, bits[:mid]), m.tree(kind, empty, bits[mid:]))
}

// --- Word-level operators ---

func sameWidth(op string, a, b Bus) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("rtl: %s width mismatch %d vs %d", op, len(a), len(b)))
	}
}

func (m *Module) map1(f func(netlist.NetID) netlist.NetID, a Bus) Bus {
	out := make(Bus, len(a))
	for i := range a {
		out[i] = f(a[i])
	}
	return out
}

func (m *Module) map2(op string, f func(x, y netlist.NetID) netlist.NetID, a, b Bus) Bus {
	sameWidth(op, a, b)
	out := make(Bus, len(a))
	for i := range a {
		out[i] = f(a[i], b[i])
	}
	return out
}

// Not inverts every bit of a.
func (m *Module) Not(a Bus) Bus { return m.map1(m.NotBit, a) }

// And is the bitwise AND of a and b.
func (m *Module) And(a, b Bus) Bus { return m.map2("And", m.AndBit, a, b) }

// Or is the bitwise OR of a and b.
func (m *Module) Or(a, b Bus) Bus { return m.map2("Or", m.OrBit, a, b) }

// Xor is the bitwise XOR of a and b.
func (m *Module) Xor(a, b Bus) Bus { return m.map2("Xor", m.XorBit, a, b) }

// Mux returns sel ? b : a, bitwise.
func (m *Module) Mux(sel netlist.NetID, a, b Bus) Bus {
	return m.map2("Mux", func(x, y netlist.NetID) netlist.NetID { return m.MuxBit(sel, x, y) }, a, b)
}

// Add returns a+b+cin as a ripple-carry sum plus the carry out.
func (m *Module) Add(a, b Bus, cin netlist.NetID) (sum Bus, cout netlist.NetID) {
	sameWidth("Add", a, b)
	sum = make(Bus, len(a))
	c := cin
	for i := range a {
		axb := m.XorBit(a[i], b[i])
		sum[i] = m.XorBit(axb, c)
		c = m.OrBit(m.AndBit(a[i], b[i]), m.AndBit(axb, c))
	}
	return sum, c
}

// Sub returns a-b and a "no borrow" flag (1 when a >= b unsigned), computed
// as a + ~b + 1.
func (m *Module) Sub(a, b Bus) (diff Bus, noBorrow netlist.NetID) {
	return m.Add(a, m.Not(b), m.one)
}

// Inc returns a+1.
func (m *Module) Inc(a Bus) Bus {
	s, _ := m.Add(a, m.Const(len(a), 0), m.one)
	return s
}

// Eq returns the 1-bit equality of a and b.
func (m *Module) Eq(a, b Bus) netlist.NetID {
	sameWidth("Eq", a, b)
	bits := make([]netlist.NetID, len(a))
	for i := range a {
		bits[i] = m.XnorBit(a[i], b[i])
	}
	return m.AndTree(bits...)
}

// EqConst returns the 1-bit comparison a == val.
func (m *Module) EqConst(a Bus, val uint64) netlist.NetID {
	bits := make([]netlist.NetID, len(a))
	for i := range a {
		if val>>uint(i)&1 == 1 {
			bits[i] = a[i]
		} else {
			bits[i] = m.NotBit(a[i])
		}
	}
	return m.AndTree(bits...)
}

// Zero returns the 1-bit test a == 0.
func (m *Module) Zero(a Bus) netlist.NetID {
	return m.NotBit(m.OrTree(a...))
}

// NonZero returns the 1-bit test a != 0.
func (m *Module) NonZero(a Bus) netlist.NetID { return m.OrTree(a...) }

// LtU returns the unsigned comparison a < b (borrow of a-b).
func (m *Module) LtU(a, b Bus) netlist.NetID {
	_, noBorrow := m.Sub(a, b)
	return m.NotBit(noBorrow)
}

// LtS returns the signed comparison a < b.
func (m *Module) LtS(a, b Bus) netlist.NetID {
	sameWidth("LtS", a, b)
	msb := len(a) - 1
	diff, _ := m.Sub(a, b)
	// a<b signed: (a.sign != b.sign) ? a.sign : diff.sign
	diffSign := diff[msb]
	return m.MuxBit(m.XorBit(a[msb], b[msb]), diffSign, a[msb])
}

// SignExtend widens a to width bits replicating its MSB.
func (m *Module) SignExtend(a Bus, width int) Bus {
	out := make(Bus, width)
	copy(out, a)
	for i := len(a); i < width; i++ {
		out[i] = a[len(a)-1]
	}
	return out
}

// ZeroExtend widens a to width bits with zeros.
func (m *Module) ZeroExtend(a Bus, width int) Bus {
	out := make(Bus, width)
	copy(out, a)
	for i := len(a); i < width; i++ {
		out[i] = m.zero
	}
	return out
}

// ShiftLeft returns a << shamt as a logarithmic barrel shifter.
func (m *Module) ShiftLeft(a Bus, shamt Bus) Bus {
	cur := a
	for s := 0; s < len(shamt) && 1<<uint(s) < len(a)*2; s++ {
		k := 1 << uint(s)
		shifted := make(Bus, len(a))
		for i := range a {
			if i >= k {
				shifted[i] = cur[i-k]
			} else {
				shifted[i] = m.zero
			}
		}
		cur = m.Mux(shamt[s], cur, shifted)
	}
	return cur
}

// ShiftRight returns a >> shamt; arithmetic when arith is true.
func (m *Module) ShiftRight(a Bus, shamt Bus, arith bool) Bus {
	fill := m.zero
	if arith {
		fill = a[len(a)-1]
	}
	cur := a
	for s := 0; s < len(shamt) && 1<<uint(s) < len(a)*2; s++ {
		k := 1 << uint(s)
		shifted := make(Bus, len(a))
		for i := range a {
			if i+k < len(a) {
				shifted[i] = cur[i+k]
			} else {
				shifted[i] = fill
			}
		}
		cur = m.Mux(shamt[s], cur, shifted)
	}
	return cur
}

// MulU returns the low len(a)+len(b) bits of the unsigned product a*b as a
// shift-and-add array multiplier — the "hardware multiplier" block of bm32
// and the openMSP430 peripheral.
func (m *Module) MulU(a, b Bus) Bus {
	width := len(a) + len(b)
	acc := m.Const(width, 0)
	for i := range b {
		partial := make(Bus, width)
		for j := 0; j < width; j++ {
			if j >= i && j-i < len(a) {
				partial[j] = m.AndBit(a[j-i], b[i])
			} else {
				partial[j] = m.zero
			}
		}
		acc, _ = m.Add(acc, partial, m.zero)
	}
	return acc
}

// Decoder returns the one-hot decode of sel (2^len(sel) outputs).
func (m *Module) Decoder(sel Bus) Bus {
	out := make(Bus, 1<<uint(len(sel)))
	for v := range out {
		bits := make([]netlist.NetID, len(sel))
		for i := range sel {
			if v>>uint(i)&1 == 1 {
				bits[i] = sel[i]
			} else {
				bits[i] = m.NotBit(sel[i])
			}
		}
		out[v] = m.AndTree(bits...)
	}
	return out
}

// MuxWord selects words[sel] with a balanced mux tree. Missing words (when
// len(words) < 2^len(sel)) read as zero.
func (m *Module) MuxWord(sel Bus, words []Bus) Bus {
	if len(words) == 0 {
		panic("rtl: MuxWord with no words")
	}
	width := len(words[0])
	pad := m.Const(width, 0)
	var build func(sel Bus, ws []Bus) Bus
	build = func(sel Bus, ws []Bus) Bus {
		if len(sel) == 0 {
			if len(ws) == 0 {
				return pad
			}
			return ws[0]
		}
		half := 1 << uint(len(sel)-1)
		var lo, hi []Bus
		if len(ws) > half {
			lo, hi = ws[:half], ws[half:]
		} else {
			lo, hi = ws, nil
		}
		a := build(sel[:len(sel)-1], lo)
		b := build(sel[:len(sel)-1], hi)
		return m.Mux(sel[len(sel)-1], a, b)
	}
	return build(sel, words)
}

// --- Sequential elements ---

// Reg creates a width-bit register with reset value init, write enable en
// and next value d. It returns the Q bus. Pass m.Hi() as en for an
// always-updating register.
func (m *Module) Reg(name string, d Bus, en netlist.NetID, init uint64) Bus {
	q := make(Bus, len(d))
	for i := range d {
		q[i] = m.N.AddNet(busBit(name, len(d), i))
		iv := logic.Lo
		if init>>uint(i)&1 == 1 {
			iv = logic.Hi
		}
		g := m.N.AddDFF(q[i], d[i], m.Clk, en, m.Rstn, iv)
		m.N.Gates[g].Name = busBit(name, len(d), i)
	}
	return q
}

// RegHold creates a register whose next value is its own output unless en
// is high, in which case it loads d: the common "load-enable" register,
// expressed via the DFF EN pin.
func (m *Module) RegHold(name string, d Bus, en netlist.NetID, init uint64) Bus {
	return m.Reg(name, d, en, init)
}

// RegFile builds a words × width register file with one write port and
// count read ports. All storage is DFFs, so the register file contributes
// to the design's gate count exactly as a synthesized flop-based register
// file would.
func (m *Module) RegFile(name string, words, width int, wen netlist.NetID, waddr Bus, wdata Bus, raddrs []Bus) []Bus {
	dec := m.Decoder(waddr)
	regs := make([]Bus, words)
	for w := 0; w < words; w++ {
		en := m.AndBit(wen, dec[w])
		regs[w] = m.Reg(fmt.Sprintf("%s_r%d", name, w), wdata, en, 0)
	}
	out := make([]Bus, len(raddrs))
	for i, ra := range raddrs {
		out[i] = m.MuxWord(ra, regs)
	}
	return out
}

// --- Memories ---

// ROM instantiates a read-only memory (asynchronous read) holding init and
// returns its read-data bus.
func (m *Module) ROM(name string, addr Bus, dataBits, words int, init []logic.Vec) Bus {
	data := make(Bus, dataBits)
	for i := range data {
		data[i] = m.N.AddNet(fmt.Sprintf("%s_rd[%d]", name, i))
	}
	m.N.AddMem(&netlist.Mem{
		Name: name, AddrBits: len(addr), DataBits: dataBits, Words: words,
		Init: init, RAddr: addr, RData: data, Clk: netlist.NoNet, WEn: netlist.NoNet,
	})
	return data
}

// RAM instantiates a RAM with an asynchronous read port and a synchronous
// write port, returning its read-data bus.
func (m *Module) RAM(name string, raddr Bus, dataBits, words int, init []logic.Vec, wen netlist.NetID, waddr, wdata Bus) Bus {
	data := make(Bus, dataBits)
	for i := range data {
		data[i] = m.N.AddNet(fmt.Sprintf("%s_rd[%d]", name, i))
	}
	m.N.AddMem(&netlist.Mem{
		Name: name, AddrBits: len(raddr), DataBits: dataBits, Words: words,
		Init: init, RAddr: raddr, RData: data,
		Clk: m.Clk, WEn: wen, WAddr: waddr, WData: wdata,
	})
	return data
}

// Slice returns bits [lo, hi) of b.
func Slice(b Bus, lo, hi int) Bus { return b[lo:hi] }

// Cat concatenates buses, lowest first.
func Cat(parts ...Bus) Bus {
	var out Bus
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Repeat returns a bus of n copies of bit.
func Repeat(bit netlist.NetID, n int) Bus {
	out := make(Bus, n)
	for i := range out {
		out[i] = bit
	}
	return out
}
