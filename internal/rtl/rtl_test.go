package rtl

import (
	"math/rand"
	"testing"

	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/vvp"
)

// comb wraps a combinational module: set inputs, settle, read outputs.
type comb struct {
	t   *testing.T
	m   *Module
	sim *vvp.Simulator
}

// newComb freezes the module and prepares a simulator with a dummy clock.
func newComb(t *testing.T, m *Module) *comb {
	t.Helper()
	if err := m.N.Freeze(); err != nil {
		t.Fatal(err)
	}
	sim := vvp.New(m.N, vvp.Options{})
	st := vvp.NewStimulus(m.Clk, 5)
	st.At(1, m.Rstn, logic.Hi)
	st.Finalize()
	sim.BindStimulus(st)
	return &comb{t: t, m: m, sim: sim}
}

// eval drives the named input buses with values and returns a bus reader.
func (c *comb) eval(assign map[string]uint64) func(bus Bus) uint64 {
	c.t.Helper()
	for name, val := range assign {
		bus := c.busByName(name)
		for i, id := range bus {
			c.sim.Drive(id, logic.Bool(val>>uint(i)&1 == 1))
		}
	}
	if _, err := c.sim.Step(); err != nil {
		c.t.Fatal(err)
	}
	return func(bus Bus) uint64 {
		v, ok := c.sim.VecValue([]netlist.NetID(bus)).Uint64()
		if !ok {
			c.t.Fatalf("output not fully known: %s", c.sim.VecValue([]netlist.NetID(bus)))
		}
		return v
	}
}

func (c *comb) busByName(name string) Bus {
	c.t.Helper()
	if id, ok := c.m.N.NetByName(name); ok {
		return Bus{id}
	}
	var bus Bus
	for i := 0; ; i++ {
		id, ok := c.m.N.NetByName(busBit(name, 2, i))
		if !ok {
			break
		}
		bus = append(bus, id)
	}
	if len(bus) == 0 {
		c.t.Fatalf("no bus %q", name)
	}
	return bus
}

func TestAdderExhaustive4Bit(t *testing.T) {
	m := NewModule("add4")
	a := m.Input("a", 4)
	b := m.Input("b", 4)
	sum, cout := m.Add(a, b, m.Lo())
	m.Output("sum", sum)
	m.Output("cout", Bus{cout})
	c := newComb(t, m)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			rd := c.eval(map[string]uint64{"a": x, "b": y})
			if got := rd(sum); got != (x+y)&0xF {
				t.Fatalf("%d+%d = %d, want %d", x, y, got, (x+y)&0xF)
			}
			if got := rd(Bus{cout}); got != (x+y)>>4 {
				t.Fatalf("cout(%d+%d) = %d", x, y, got)
			}
		}
	}
}

func TestSubAndComparators(t *testing.T) {
	m := NewModule("cmp")
	a := m.Input("a", 8)
	b := m.Input("b", 8)
	diff, noBorrow := m.Sub(a, b)
	m.Output("diff", diff)
	m.Output("nb", Bus{noBorrow})
	eq := m.Eq(a, b)
	m.Output("eq", Bus{eq})
	ltu := m.LtU(a, b)
	m.Output("ltu", Bus{ltu})
	lts := m.LtS(a, b)
	m.Output("lts", Bus{lts})
	z := m.Zero(a)
	m.Output("z", Bus{z})
	c := newComb(t, m)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		x, y := uint64(r.Intn(256)), uint64(r.Intn(256))
		rd := c.eval(map[string]uint64{"a": x, "b": y})
		if got := rd(diff); got != (x-y)&0xFF {
			t.Fatalf("%d-%d = %d", x, y, got)
		}
		if got := rd(Bus{noBorrow}) == 1; got != (x >= y) {
			t.Fatalf("noBorrow(%d,%d) = %v", x, y, got)
		}
		if got := rd(Bus{eq}) == 1; got != (x == y) {
			t.Fatalf("eq(%d,%d) = %v", x, y, got)
		}
		if got := rd(Bus{ltu}) == 1; got != (x < y) {
			t.Fatalf("ltu(%d,%d) = %v", x, y, got)
		}
		if got := rd(Bus{lts}) == 1; got != (int8(x) < int8(y)) {
			t.Fatalf("lts(%d,%d) = %v", x, y, got)
		}
		if got := rd(Bus{z}) == 1; got != (x == 0) {
			t.Fatalf("zero(%d) = %v", x, got)
		}
	}
}

func TestShifters(t *testing.T) {
	m := NewModule("sh")
	a := m.Input("a", 16)
	sh := m.Input("sh", 4)
	sll := m.ShiftLeft(a, sh)
	srl := m.ShiftRight(a, sh, false)
	sra := m.ShiftRight(a, sh, true)
	m.Output("sll", sll)
	m.Output("srl", srl)
	m.Output("sra", sra)
	c := newComb(t, m)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		x := uint64(r.Intn(1 << 16))
		s := uint64(r.Intn(16))
		rd := c.eval(map[string]uint64{"a": x, "sh": s})
		if got := rd(sll); got != x<<s&0xFFFF {
			t.Fatalf("%#x<<%d = %#x", x, s, got)
		}
		if got := rd(srl); got != x>>s {
			t.Fatalf("%#x>>%d = %#x", x, s, got)
		}
		want := uint64(uint16(int16(x) >> s))
		if got := rd(sra); got != want {
			t.Fatalf("%#x>>>%d = %#x, want %#x", x, s, got, want)
		}
	}
}

func TestMultiplier(t *testing.T) {
	m := NewModule("mul")
	a := m.Input("a", 8)
	b := m.Input("b", 8)
	p := m.MulU(a, b)
	m.Output("p", p)
	c := newComb(t, m)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x, y := uint64(r.Intn(256)), uint64(r.Intn(256))
		rd := c.eval(map[string]uint64{"a": x, "b": y})
		if got := rd(p); got != x*y {
			t.Fatalf("%d*%d = %d", x, y, got)
		}
	}
}

func TestMuxWordAndDecoder(t *testing.T) {
	m := NewModule("mux")
	sel := m.Input("sel", 2)
	words := []Bus{m.Const(8, 0xAA), m.Const(8, 0xBB), m.Const(8, 0xCC), m.Const(8, 0xDD)}
	out := m.MuxWord(sel, words)
	m.Output("out", out)
	dec := m.Decoder(sel)
	m.Output("dec", dec)
	c := newComb(t, m)
	want := []uint64{0xAA, 0xBB, 0xCC, 0xDD}
	for s := uint64(0); s < 4; s++ {
		rd := c.eval(map[string]uint64{"sel": s})
		if got := rd(out); got != want[s] {
			t.Fatalf("mux[%d] = %#x", s, got)
		}
		if got := rd(dec); got != 1<<s {
			t.Fatalf("dec[%d] = %#x", s, got)
		}
	}
}

func TestSignZeroExtendAndCat(t *testing.T) {
	m := NewModule("ext")
	a := m.Input("a", 4)
	se := m.SignExtend(a, 8)
	ze := m.ZeroExtend(a, 8)
	m.Output("se", se)
	m.Output("ze", ze)
	c := newComb(t, m)
	rd := c.eval(map[string]uint64{"a": 0xC})
	if got := rd(se); got != 0xFC {
		t.Fatalf("sext(0xC) = %#x", got)
	}
	if got := rd(ze); got != 0x0C {
		t.Fatalf("zext(0xC) = %#x", got)
	}
	if len(Cat(Bus{1, 2}, Bus{3})) != 3 {
		t.Fatal("Cat length")
	}
	if len(Repeat(5, 4)) != 4 {
		t.Fatal("Repeat length")
	}
}

func TestRegFileReadWrite(t *testing.T) {
	m := NewModule("rf")
	wen := m.Input("wen", 1)
	waddr := m.Input("waddr", 2)
	wdata := m.Input("wdata", 8)
	raddr := m.Input("raddr", 2)
	ports := m.RegFile("regs", 4, 8, wen[0], waddr, wdata, []Bus{raddr})
	m.Output("rdata", ports[0])
	if err := m.N.Freeze(); err != nil {
		t.Fatal(err)
	}
	sim := vvp.New(m.N, vvp.Options{})
	st := vvp.NewStimulus(m.Clk, 5)
	st.At(1, m.Rstn, logic.Lo)
	st.At(11, m.Rstn, logic.Hi)
	// Write 0x5A to register 2 at the posedge after reset.
	st.At(11, wen[0], logic.Hi)
	st.At(11, waddr[0], logic.Lo)
	st.At(11, waddr[1], logic.Hi)
	for i := 0; i < 8; i++ {
		st.At(11, wdata[i], logic.Bool(0x5A>>uint(i)&1 == 1))
	}
	st.At(21, wen[0], logic.Lo)
	st.At(21, raddr[0], logic.Lo)
	st.At(21, raddr[1], logic.Hi)
	st.Finalize()
	sim.BindStimulus(st)
	for sim.Cycles() < 3 {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := sim.VecValue([]netlist.NetID(ports[0])).Uint64()
	if !ok || got != 0x5A {
		t.Fatalf("regfile read = %#x (%v)", got, ok)
	}
}

func TestTreeReductions(t *testing.T) {
	m := NewModule("tree")
	a := m.Input("a", 5)
	and := m.AndTree(a...)
	or := m.OrTree(a...)
	m.Output("and", Bus{and})
	m.Output("or", Bus{or})
	c := newComb(t, m)
	for _, x := range []uint64{0, 0x1F, 0x0F, 0x10, 1} {
		rd := c.eval(map[string]uint64{"a": x})
		if got := rd(Bus{and}) == 1; got != (x == 0x1F) {
			t.Fatalf("andTree(%#x) = %v", x, got)
		}
		if got := rd(Bus{or}) == 1; got != (x != 0) {
			t.Fatalf("orTree(%#x) = %v", x, got)
		}
	}
}

func TestEqConstAndIncAndWidthPanics(t *testing.T) {
	m := NewModule("misc")
	a := m.Input("a", 4)
	eq := m.EqConst(a, 0xA)
	inc := m.Inc(a)
	m.Output("eq", Bus{eq})
	m.Output("inc", inc)
	c := newComb(t, m)
	rd := c.eval(map[string]uint64{"a": 0xA})
	if rd(Bus{eq}) != 1 {
		t.Fatal("EqConst(0xA) false")
	}
	if got := rd(inc); got != 0xB {
		t.Fatalf("inc(0xA) = %#x", got)
	}
	rd = c.eval(map[string]uint64{"a": 0xF})
	if got := rd(inc); got != 0 {
		t.Fatalf("inc(0xF) = %#x, want wraparound 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch accepted")
		}
	}()
	m2 := NewModule("bad")
	m2.And(m2.Input("x", 2), m2.Input("y", 3))
}
