package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// This file is the structured exploration trace: one JSONL record per
// event, written while the analysis runs (core emits spans and governance
// events, the CSM decision hook emits decisions) and read back by `symsim
// explain`. Every record is a flat JSON object whose "t" field selects the
// type, so the log is greppable, stream-parsable, and extensible — readers
// skip record types they do not know.

// Trace record type tags (the "t" field).
const (
	RecMeta     = "meta"
	RecSpan     = "span"
	RecDecision = "csm"
	RecTrip     = "trip"
	RecDone     = "done"
)

// Meta opens a trace: what ran and under which knobs.
type Meta struct {
	T       string `json:"t"` // RecMeta
	Design  string `json:"design"`
	Bench   string `json:"bench,omitempty"`
	Policy  string `json:"policy"`
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
}

// Span records one simulated path segment: where it came from, where it
// halted, and what it cost.
type Span struct {
	T string `json:"t"` // RecSpan
	// ID is the worklist path ID; Parent the ID of the path whose fork
	// created it (-1 for the cold-boot path and for paths restored from a
	// checkpoint, whose parentage the checkpoint does not preserve).
	ID     int `json:"id"`
	Parent int `json:"parent"`
	// StartPC is the PC of the forked state this segment resumed from
	// (0 for the cold-boot path); HaltPC where it halted or was subsumed.
	StartPC uint64 `json:"startPc"`
	HaltPC  uint64 `json:"haltPc,omitempty"`
	// Forced is "1"/"0" for the branch interpretation this path followed,
	// empty for the cold-boot path.
	Forced string `json:"forced,omitempty"`
	// End is the core.PathEnd name: forked, subsumed, finished,
	// interrupted, quarantined.
	End string `json:"end"`
	// Cycles is the segment's simulated clock cycles; WallUS its wall-clock
	// simulation time in microseconds (the per-path CPU attribution).
	Cycles uint64 `json:"cycles"`
	WallUS int64  `json:"wallUs"`
}

// Decision records one CSM verdict: the decision log entry behind the
// per-PC merge hot-spot view.
type Decision struct {
	T string `json:"t"` // RecDecision
	// Path is the path segment whose halt was classified (-1 for the
	// force-merges of a degradation drain).
	Path int    `json:"path"`
	PC   uint64 `json:"pc"`
	// Verdict is "subsumed" (the state was a subset of a stored
	// conservative state — the path is skipped), "merged" (a conservative
	// superstate absorbed it) or "new" (stored as an additional state).
	Verdict string `json:"verdict"`
	// XGained is the number of known bits the merge turned into X — the
	// bit-count delta measuring how much over-approximation this merge
	// introduced. Zero for subsumed and new verdicts.
	XGained int `json:"xGained,omitempty"`
	// States is the number of conservative states stored after this
	// decision.
	States int `json:"states"`
}

// TripRec records a governance stop: which budget tripped and when.
type TripRec struct {
	T         string `json:"t"` // RecTrip
	Trip      string `json:"trip"`
	ElapsedMS int64  `json:"elapsedMs"`
}

// Done closes a trace with the run's outcome.
type Done struct {
	T            string `json:"t"` // RecDone
	Complete     bool   `json:"complete"`
	PathsCreated int    `json:"pathsCreated"`
	PathsSkipped int    `json:"pathsSkipped"`
	Cycles       uint64 `json:"cycles"`
	Exercisable  int    `json:"exercisable"`
	TotalGates   int    `json:"totalGates"`
	CSMStates    int    `json:"csmStates"`
	ElapsedMS    int64  `json:"elapsedMs"`
}

// Tracer writes trace records as JSONL. It is safe for concurrent use
// (path workers and the governance watcher emit concurrently) and nil-safe:
// a nil *Tracer drops every record, so callers emit unconditionally and
// the disabled path costs one pointer test.
type Tracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewTracer returns a tracer writing JSONL records to w.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one record. The first write error is retained (see Err) and
// later records are dropped.
func (t *Tracer) Emit(rec any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(rec)
}

// Flush drains buffered records to the underlying writer. Call once the
// run is over (the tracer does not own the file handle).
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// TraceLog is a fully parsed trace file.
type TraceLog struct {
	Meta      *Meta
	Spans     []Span
	Decisions []Decision
	Trips     []TripRec
	Done      *Done
	// Skipped counts records with an unknown "t" tag (written by a newer
	// tool); they are ignored, not errors.
	Skipped int
}

// ReadTrace parses a JSONL trace. Unknown record types are counted and
// skipped; malformed lines are errors.
func ReadTrace(r io.Reader) (*TraceLog, error) {
	log := &TraceLog{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var tag struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(raw, &tag); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		var err error
		switch tag.T {
		case RecMeta:
			m := &Meta{}
			if err = json.Unmarshal(raw, m); err == nil {
				log.Meta = m
			}
		case RecSpan:
			var s Span
			if err = json.Unmarshal(raw, &s); err == nil {
				log.Spans = append(log.Spans, s)
			}
		case RecDecision:
			var d Decision
			if err = json.Unmarshal(raw, &d); err == nil {
				log.Decisions = append(log.Decisions, d)
			}
		case RecTrip:
			var tr TripRec
			if err = json.Unmarshal(raw, &tr); err == nil {
				log.Trips = append(log.Trips, tr)
			}
		case RecDone:
			d := &Done{}
			if err = json.Unmarshal(raw, d); err == nil {
				log.Done = d
			}
		default:
			log.Skipped++
		}
		if err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return log, nil
}
