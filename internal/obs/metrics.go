// Package obs is symsim's zero-dependency observability layer: a
// lock-cheap metrics registry (atomic counters, gauges and histograms with
// Prometheus text exposition) plus a structured JSONL trace of one
// exploration (per-path spans and CSM decisions) with the reader and
// renderer behind `symsim explain`.
//
// The package deliberately depends on nothing but the standard library and
// nothing inside symsim, so every layer — vvp, csm, core, service, the
// CLIs — can publish into it without import cycles. Instrument publishers
// follow one rule: nothing on a per-cycle hot path. The simulation engines
// accumulate plain integers (vvp's cycle/sweep/eval counters) and the
// analysis driver publishes the deltas once per path segment, so a run
// with observability "on" (it always is; only tracing is optional) stays
// within noise of one without.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bucket upper bounds are chosen at
// creation and never change, so Observe is a linear scan over a handful of
// bounds plus three atomic adds — no locks, no allocation.
type Histogram struct {
	bounds []float64 // ascending upper bounds (le); +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits accumulated via CAS
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given factor — the usual shape for cycle counts and
// latencies.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// CounterVec is a family of counters keyed by one label value (e.g. a
// program counter). Children are created on first use; the family is
// bounded by maxVecChildren — beyond it new label values collapse into the
// "other" child so a pathological run cannot grow the exposition without
// bound (the cap is visible in the exposition, not silent: "other" carries
// the overflow).
type CounterVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// maxVecChildren bounds the distinct label values one CounterVec exposes.
const maxVecChildren = 1024

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c != nil {
		return c
	}
	if len(v.m) >= maxVecChildren {
		value = "other"
		if c = v.m[value]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.m[value] = c
	return c
}

// metricKind tags a registered family for the TYPE exposition line.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterVec
)

type family struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	histo   *Histogram
	vec     *CounterVec
}

// Registry is a set of named metric families. Get-or-create accessors are
// cheap enough for setup paths; hot paths cache the returned pointers.
// All methods are safe for concurrent use.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fam: make(map[string]*family)} }

// Default is the process-wide registry: core, csm, vvp and the service
// publish into it unless explicitly given another (core.Config.Metrics).
var Default = NewRegistry()

func (r *Registry) get(name, help string, kind metricKind, mk func() *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fam[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return f
	}
	f := mk()
	f.name, f.help, f.kind = name, help, kind
	r.fam[name] = f
	return f
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, kindCounter, func() *family { return &family{counter: &Counter{}} }).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, kindGauge, func() *family { return &family{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (e.g. a queue depth). Re-registering the same name replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.get(name, help, kindGaugeFunc, func() *family { return &family{} })
	r.mu.Lock()
	f.fn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls ignore buckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.get(name, help, kindHistogram, func() *family {
		b := append([]float64(nil), buckets...)
		sort.Float64s(b)
		return &family{histo: &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}}
	}).histo
}

// CounterVec returns the named one-label counter family, creating it on
// first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.get(name, help, kindCounterVec, func() *family {
		return &family{vec: &CounterVec{label: label, m: make(map[string]*Counter)}}
	}).vec
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// fmtFloat renders a sample value the way Prometheus expects: integers
// without an exponent, +Inf spelled out.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4), sorted by metric name so scrapes are
// reproducible.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fam))
	for _, f := range r.fam {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		var err error
		switch f.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.gauge.Value())
		case kindGaugeFunc:
			r.mu.Lock()
			fn := f.fn
			r.mu.Unlock()
			v := 0.0
			if fn != nil {
				v = fn()
			}
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, fmtFloat(v))
		case kindHistogram:
			err = writeHistogram(w, f.name, f.histo)
		case kindCounterVec:
			err = writeVec(w, f.name, f.vec)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

func writeVec(w io.Writer, name string, v *CounterVec) error {
	v.mu.RLock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		c := v.m[k]
		v.mu.RUnlock()
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, v.label, escapeLabel(k), c.Value()); err != nil {
			return err
		}
	}
	return nil
}
