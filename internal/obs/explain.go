package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Explain renders a parsed trace as a human-readable report: run header,
// the fork tree (one line per path span, indented by ancestry), the per-PC
// CSM hot-spot table, and governance/outcome footers. It is the engine of
// `symsim explain`.
func Explain(w io.Writer, log *TraceLog) error {
	ew := &errWriter{w: w}
	if m := log.Meta; m != nil {
		ew.printf("run: design=%s", m.Design)
		if m.Bench != "" {
			ew.printf(" bench=%s", m.Bench)
		}
		ew.printf(" policy=%s engine=%s workers=%d\n", m.Policy, m.Engine, m.Workers)
	}

	ew.printf("\nfork tree (%d path segments):\n", len(log.Spans))
	writeForkTree(ew, log.Spans)

	if hs := hotSpots(log.Decisions); len(hs) > 0 {
		ew.printf("\ncsm decisions by PC (%d total):\n", len(log.Decisions))
		ew.printf("  %-12s %8s %8s %8s %10s\n", "pc", "subsumed", "merged", "new", "xGained")
		for _, h := range hs {
			ew.printf("  0x%08x %8d %8d %8d %10d\n", h.pc, h.subsumed, h.merged, h.new, h.xGained)
		}
	}

	for _, tr := range log.Trips {
		ew.printf("\nbudget trip: %s at %dms\n", tr.Trip, tr.ElapsedMS)
	}
	if d := log.Done; d != nil {
		status := "complete"
		if !d.Complete {
			status = "degraded"
		}
		ew.printf("\noutcome: %s  paths=%d skipped=%d cycles=%d csmStates=%d exercisable=%d/%d  %dms\n",
			status, d.PathsCreated, d.PathsSkipped, d.Cycles, d.CSMStates,
			d.Exercisable, d.TotalGates, d.ElapsedMS)
	}
	if log.Skipped > 0 {
		ew.printf("(%d unknown trace records skipped)\n", log.Skipped)
	}
	return ew.err
}

// writeForkTree prints spans as a tree indented by fork ancestry. Spans
// whose parent is unknown (cold boot, checkpoint restores) are roots.
func writeForkTree(ew *errWriter, spans []Span) {
	children := make(map[int][]Span)
	ids := make(map[int]bool, len(spans))
	for _, s := range spans {
		ids[s.ID] = true
	}
	var roots []Span
	for _, s := range spans {
		if s.Parent >= 0 && ids[s.Parent] && s.Parent != s.ID {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	for m := range children {
		sort.Slice(children[m], func(i, j int) bool { return children[m][i].ID < children[m][j].ID })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })

	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		if depth > 64 { // cycles cannot happen in a well-formed trace; stay safe anyway
			return
		}
		indent := strings.Repeat("  ", depth)
		forced := ""
		if s.Forced != "" {
			forced = " forced=" + s.Forced
		}
		haltPC := ""
		if s.HaltPC != 0 || s.End == "forked" || s.End == "subsumed" {
			haltPC = fmt.Sprintf(" haltPc=0x%x", s.HaltPC)
		}
		ew.printf("  %spath %d [%s]%s startPc=0x%x%s cycles=%d wall=%s\n",
			indent, s.ID, s.End, forced, s.StartPC, haltPC, s.Cycles, fmtWall(s.WallUS))
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

func fmtWall(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

type pcStat struct {
	pc       uint64
	subsumed int
	merged   int
	new      int
	xGained  int
}

// hotSpots aggregates decisions per PC, ordered by total activity so the
// PCs where merging concentrates come first.
func hotSpots(decisions []Decision) []pcStat {
	agg := make(map[uint64]*pcStat)
	for _, d := range decisions {
		s := agg[d.PC]
		if s == nil {
			s = &pcStat{pc: d.PC}
			agg[d.PC] = s
		}
		switch d.Verdict {
		case "subsumed":
			s.subsumed++
		case "merged":
			s.merged++
			s.xGained += d.XGained
		case "new":
			s.new++
		}
	}
	out := make([]pcStat, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].subsumed + out[i].merged + out[i].new
		tj := out[j].subsumed + out[j].merged + out[j].new
		if ti != tj {
			return ti > tj
		}
		return out[i].pc < out[j].pc
	})
	return out
}

// errWriter makes a chain of prints short-circuit on the first error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
