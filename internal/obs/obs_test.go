package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	var v *CounterVec
	if v.With("x") != nil {
		t.Fatal("nil vec must hand out nil counters")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_test", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+10+50+1000; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE h_test histogram",
		`h_test_bucket{le="1"} 2`,   // 0.5, 1 (le is inclusive)
		`h_test_bucket{le="10"} 4`,  // + 5, 10
		`h_test_bucket{le="100"} 5`, // + 50
		`h_test_bucket{le="+Inf"} 6`,
		"h_test_sum 1066.5",
		"h_test_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_conc", "", ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000 {
		t.Fatalf("sum = %v, want 8000", h.Sum())
	}
}

func TestCounterVecOverflow(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_test", "", "pc")
	for i := 0; i < maxVecChildren+50; i++ {
		v.With(fmt.Sprintf("0x%x", i)).Inc()
	}
	other := v.With("other")
	if other.Value() == 0 {
		t.Fatal("overflow label values must collapse into \"other\"")
	}
	v.mu.RLock()
	n := len(v.m)
	v.mu.RUnlock()
	if n > maxVecChildren+1 {
		t.Fatalf("vec grew to %d children, cap is %d", n, maxVecChildren)
	}
}

func TestRegistryReuseAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("same", "h")
	c2 := r.Counter("same", "ignored")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("same", "boom")
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	val := 0.0
	r.GaugeFunc("gf", "queue depth", func() float64 { return val })
	val = 7
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gf 7\n") {
		t.Fatalf("gauge func value not exposed:\n%s", buf.String())
	}
	// Re-registering replaces the function.
	r.GaugeFunc("gf", "queue depth", func() float64 { return 9 })
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gf 9\n") {
		t.Fatalf("replaced gauge func not exposed:\n%s", buf.String())
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter", "a counter").Add(2)
	r.Gauge("a_gauge", "a gauge").Set(-3)
	r.CounterVec("c_vec", "per pc", "pc").With(`quo"te\n`).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Families are sorted by name.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_counter") {
		t.Fatalf("families not sorted:\n%s", out)
	}
	for _, want := range []string{
		"# HELP a_gauge a gauge",
		"# TYPE a_gauge gauge",
		"a_gauge -3",
		"# TYPE b_counter counter",
		"b_counter 2",
		`c_vec{pc="quo\"te\\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Meta{T: RecMeta, Design: "cpu8", Bench: "fib", Policy: "exact", Engine: "kernel", Workers: 4})
	tr.Emit(Span{T: RecSpan, ID: 0, Parent: -1, End: "forked", HaltPC: 0x10, Cycles: 100, WallUS: 1500})
	tr.Emit(Span{T: RecSpan, ID: 1, Parent: 0, StartPC: 0x10, Forced: "1", End: "finished", Cycles: 50, WallUS: 800})
	tr.Emit(Span{T: RecSpan, ID: 2, Parent: 0, StartPC: 0x10, Forced: "0", End: "subsumed", HaltPC: 0x10, Cycles: 10, WallUS: 90})
	tr.Emit(Decision{T: RecDecision, Path: 2, PC: 0x10, Verdict: "subsumed", States: 1})
	tr.Emit(Decision{T: RecDecision, Path: 1, PC: 0x20, Verdict: "merged", XGained: 3, States: 2})
	tr.Emit(TripRec{T: RecTrip, Trip: "wall clock budget", ElapsedMS: 42})
	tr.Emit(Done{T: RecDone, Complete: true, PathsCreated: 3, PathsSkipped: 1, Cycles: 160, Exercisable: 5, TotalGates: 9, CSMStates: 2, ElapsedMS: 7})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	log, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if log.Meta == nil || log.Meta.Design != "cpu8" || log.Meta.Workers != 4 {
		t.Fatalf("meta = %+v", log.Meta)
	}
	if len(log.Spans) != 3 || log.Spans[1].Forced != "1" {
		t.Fatalf("spans = %+v", log.Spans)
	}
	if len(log.Decisions) != 2 || log.Decisions[1].XGained != 3 {
		t.Fatalf("decisions = %+v", log.Decisions)
	}
	if len(log.Trips) != 1 || log.Trips[0].Trip != "wall clock budget" {
		t.Fatalf("trips = %+v", log.Trips)
	}
	if log.Done == nil || !log.Done.Complete || log.Done.PathsCreated != 3 {
		t.Fatalf("done = %+v", log.Done)
	}
}

func TestReadTraceSkipsUnknownRecords(t *testing.T) {
	in := strings.NewReader(`{"t":"meta","design":"d","policy":"exact","engine":"kernel","workers":1}
{"t":"future-record","x":1}

{"t":"done","complete":true}
`)
	log, err := ReadTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	if log.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", log.Skipped)
	}
	if log.Meta == nil || log.Done == nil {
		t.Fatal("known records must still parse")
	}
}

func TestReadTraceMalformed(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(Span{})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestExplainRendersTreeAndHotSpots(t *testing.T) {
	log := &TraceLog{
		Meta: &Meta{Design: "cpu8", Bench: "fib", Policy: "exact", Engine: "kernel", Workers: 2},
		Spans: []Span{
			{ID: 0, Parent: -1, End: "forked", HaltPC: 0x10, Cycles: 100, WallUS: 2_500_000},
			{ID: 1, Parent: 0, StartPC: 0x10, Forced: "1", End: "finished", Cycles: 50, WallUS: 1200},
			{ID: 2, Parent: 0, StartPC: 0x10, Forced: "0", End: "subsumed", HaltPC: 0x10, Cycles: 10, WallUS: 90},
			{ID: 3, Parent: 9999, End: "finished", Cycles: 5, WallUS: 10}, // orphan → root
		},
		Decisions: []Decision{
			{Path: 2, PC: 0x10, Verdict: "subsumed", States: 1},
			{Path: 1, PC: 0x10, Verdict: "merged", XGained: 4, States: 1},
			{Path: 1, PC: 0x20, Verdict: "new", States: 2},
		},
		Trips: []TripRec{{Trip: "cycle budget", ElapsedMS: 11}},
		Done:  &Done{Complete: false, PathsCreated: 4, PathsSkipped: 1, Cycles: 165, Exercisable: 3, TotalGates: 9, CSMStates: 2, ElapsedMS: 12},
	}
	var buf bytes.Buffer
	if err := Explain(&buf, log); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"design=cpu8", "bench=fib", "policy=exact",
		"path 0 [forked]",
		"  path 1 [finished] forced=1", // indented under parent
		"path 3 [finished]",            // orphan still printed
		"0x00000010", "0x00000020",
		"budget trip: cycle budget",
		"outcome: degraded",
		"2.50s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Hot-spot ordering: PC 0x10 (2 decisions) before 0x20 (1).
	if strings.Index(out, "0x00000010") > strings.Index(out, "0x00000020") {
		t.Fatalf("hot spots not sorted by activity:\n%s", out)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}
