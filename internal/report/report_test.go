package report

import (
	"strings"
	"testing"

	"symsim/internal/core"
)

// miniSweep runs a reduced sweep (fast benchmarks only) shared by the
// rendering tests.
func miniSweep(t *testing.T) *Sweep {
	t.Helper()
	s, err := Run(Options{
		Benchmarks: []string{"mult", "tea8"},
		Config:     core.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSweepShape(t *testing.T) {
	s := miniSweep(t)
	if len(s.Cells) != 2*3 {
		t.Fatalf("cells = %d, want 6", len(s.Cells))
	}
	for _, c := range s.Cells {
		if c.TotalGates == 0 || c.Exercisable == 0 || c.SimCycles == 0 {
			t.Errorf("empty cell: %+v", c)
		}
		if c.ReductionPct <= 0 || c.ReductionPct >= 100 {
			t.Errorf("%s/%s reduction %.1f", c.Benchmark, c.Design, c.ReductionPct)
		}
	}
	if s.Policy != "merge-all" {
		t.Errorf("policy = %q", s.Policy)
	}
}

func TestHeadlineShapes(t *testing.T) {
	s := miniSweep(t)
	// tea8 runs in exactly one path on all three designs; mult in one on
	// the multiplier-equipped designs and several on dr5 (paper Table 4).
	for _, d := range Designs {
		c, _ := s.cell("tea8", d)
		if c.PathsCreated != 1 {
			t.Errorf("tea8/%s paths = %d", d, c.PathsCreated)
		}
	}
	if c, _ := s.cell("mult", DR5); c.PathsCreated <= 1 {
		t.Errorf("mult/dr5 paths = %d, want > 1", c.PathsCreated)
	}
	// openMSP430 shows the largest reduction on tea8 (unused peripherals,
	// paper Figure 5).
	msp, _ := s.cell("tea8", OMSP430)
	for _, d := range []Design{BM32, DR5} {
		c, _ := s.cell("tea8", d)
		if msp.ReductionPct <= c.ReductionPct {
			t.Errorf("omsp430 reduction %.1f%% not above %s's %.1f%%", msp.ReductionPct, d, c.ReductionPct)
		}
	}
}

func TestTableRendering(t *testing.T) {
	s := miniSweep(t)
	t1 := Table1()
	for _, want := range []string{"Div", "tea8", "TEA encryption"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bm32", "omsp430", "dr5", "MIPS32", "MSP430", "RV32E"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	t3 := s.Table3()
	if !strings.Contains(t3, "Gate count analysis") || !strings.Contains(t3, "mult") {
		t.Errorf("Table 3:\n%s", t3)
	}
	t4 := s.Table4()
	if !strings.Contains(t4, "created") || !strings.Contains(t4, "tea8") {
		t.Errorf("Table 4:\n%s", t4)
	}
	f5 := s.Figure5()
	if !strings.Contains(f5, "Figure 5") || !strings.Contains(f5, "#") {
		t.Errorf("Figure 5:\n%s", f5)
	}
	f6 := s.Figure6()
	if !strings.Contains(f6, "Figure 6") {
		t.Errorf("Figure 6:\n%s", f6)
	}
	csv := s.CSV()
	if !strings.Contains(csv, "benchmark,design") || strings.Count(csv, "\n") != 7 {
		t.Errorf("CSV:\n%s", csv)
	}
}

func TestBuildPlatformErrors(t *testing.T) {
	if _, err := BuildPlatform(BM32, "nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := BuildPlatform(Design("vax"), "Div"); err == nil {
		t.Error("unknown design accepted")
	}
}
