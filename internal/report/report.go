// Package report regenerates the tables and figures of the paper's
// evaluation section: Table 1 (benchmarks), Table 2 (target platforms),
// Table 3 (gate-count analysis), Table 4 (simulation path and runtime
// analysis), Figure 5 (per-benchmark exercisable-gate reduction) and
// Figure 6 (per-benchmark simulation paths). The same sweep backs the
// benchmark harness in bench_test.go and the cmd/paper tool.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"symsim/internal/core"
	"symsim/internal/cpu/bm32"
	"symsim/internal/cpu/dr5"
	"symsim/internal/cpu/omsp430"
	"symsim/internal/csm"
	"symsim/internal/prog"
)

// Design identifies one of the three evaluation processors.
type Design string

// The three processors of paper Table 2.
const (
	BM32    Design = "bm32"
	OMSP430 Design = "omsp430"
	DR5     Design = "dr5"
)

// Designs lists the evaluation processors in the paper's column order.
var Designs = []Design{BM32, OMSP430, DR5}

// isaOf maps a design to its benchmark ISA.
func isaOf(d Design) (prog.ISA, error) {
	switch d {
	case BM32:
		return prog.ISAMips, nil
	case OMSP430:
		return prog.ISAMsp430, nil
	case DR5:
		return prog.ISARV32, nil
	}
	return "", fmt.Errorf("report: unknown design %q", d)
}

// BuildPlatform assembles the benchmark for the design's ISA and
// elaborates the processor with the program preloaded.
func BuildPlatform(d Design, benchmark string) (*core.Platform, error) {
	isa, err := isaOf(d)
	if err != nil {
		return nil, err
	}
	img, err := prog.Build(benchmark, isa)
	if err != nil {
		return nil, err
	}
	var p *core.Platform
	switch d {
	case BM32:
		p, err = bm32.Build(img)
	case OMSP430:
		p, err = omsp430.Build(img)
	case DR5:
		p, err = dr5.Build(img)
	default:
		return nil, fmt.Errorf("report: unknown design %q", d)
	}
	if err != nil {
		return nil, err
	}
	p.Bench = benchmark
	// Run the structural lint now: it validates the elaborated design, is
	// cached on the platform, and every subsequent Analyze reads the
	// cached result instead of re-linting an immutable netlist.
	p.Lint()
	return p, nil
}

// Cell is one benchmark x design measurement.
type Cell struct {
	Benchmark string
	Design    Design

	TotalGates   int
	Exercisable  int
	ReductionPct float64

	PathsCreated int
	PathsSkipped int
	SimCycles    uint64

	Wall time.Duration
}

// Sweep holds the full evaluation matrix.
type Sweep struct {
	Cells  []Cell
	Policy string
}

// Options configure a sweep.
type Options struct {
	// Benchmarks defaults to the six of Table 1.
	Benchmarks []string
	// Designs defaults to the three of Table 2.
	Designs []Design
	// Config is passed to every analysis (Policy nil = merge-all).
	Config core.Config
	// Progress, when non-nil, receives one line per finished cell.
	Progress func(string)
}

// Run executes the sweep: one symbolic co-analysis per benchmark x design.
func Run(opt Options) (*Sweep, error) {
	if opt.Benchmarks == nil {
		for _, b := range prog.Benchmarks {
			opt.Benchmarks = append(opt.Benchmarks, b.Name)
		}
	}
	if opt.Designs == nil {
		opt.Designs = Designs
	}
	policy := opt.Config.Policy
	sweep := &Sweep{}
	for _, b := range opt.Benchmarks {
		for _, d := range opt.Designs {
			p, err := BuildPlatform(d, b)
			if err != nil {
				return nil, fmt.Errorf("report: %s/%s: %w", b, d, err)
			}
			cfg := opt.Config
			if policy == nil {
				cfg.Policy = csm.NewMergeAll()
			}
			start := time.Now()
			res, err := core.Analyze(p, cfg)
			if err != nil {
				return nil, fmt.Errorf("report: %s/%s: %w", b, d, err)
			}
			cell := Cell{
				Benchmark:    b,
				Design:       d,
				TotalGates:   res.TotalGates,
				Exercisable:  res.ExercisableCount,
				ReductionPct: res.ReductionPct(),
				PathsCreated: res.PathsCreated,
				PathsSkipped: res.PathsSkipped,
				SimCycles:    res.SimulatedCycles,
				Wall:         time.Since(start),
			}
			sweep.Cells = append(sweep.Cells, cell)
			sweep.Policy = res.Policy
			if opt.Progress != nil {
				opt.Progress(fmt.Sprintf("%-9s %-8s %6d/%6d gates (%.1f%%)  %5d paths  %7d cycles  %s",
					b, d, cell.Exercisable, cell.TotalGates, cell.ReductionPct,
					cell.PathsCreated, cell.SimCycles, cell.Wall.Round(time.Millisecond)))
			}
		}
	}
	return sweep, nil
}

// cell finds the sweep entry for (benchmark, design).
func (s *Sweep) cell(b string, d Design) (Cell, bool) {
	for _, c := range s.Cells {
		if c.Benchmark == b && c.Design == d {
			return c, true
		}
	}
	return Cell{}, false
}

// benchmarks returns the benchmark names in first-appearance order.
func (s *Sweep) benchmarks() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range s.Cells {
		if !seen[c.Benchmark] {
			seen[c.Benchmark] = true
			out = append(out, c.Benchmark)
		}
	}
	return out
}

// Table1 renders the benchmark list (paper Table 1).
func Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1. Benchmark Applications\n")
	fmt.Fprintf(&sb, "%-10s %s\n", "Benchmark", "Description")
	for _, b := range prog.Benchmarks {
		fmt.Fprintf(&sb, "%-10s %s\n", b.Name, b.Desc)
	}
	return sb.String()
}

// Table2 renders the target platform characterization (paper Table 2),
// including the synthesized gate counts of this reproduction.
func Table2() (string, error) {
	var sb strings.Builder
	sb.WriteString("Table 2. Target Platform Characterization\n")
	fmt.Fprintf(&sb, "%-10s %-8s %7s  %s\n", "Design", "ISA", "Gates", "Features")
	rows := []struct {
		d        Design
		isa      string
		features string
	}{
		{BM32, "MIPS32", "32-bit MIPS implementation with 32x32 hardware multiplier"},
		{OMSP430, "MSP430", "16-bit microcontroller with 16x16 hardware multiplier, watchdog, GPIO, TimerA"},
		{DR5, "RV32E", "32-bit RISC-V embedded ISA with 16 integer registers, no multiplier"},
	}
	for _, r := range rows {
		p, err := BuildPlatform(r.d, "tea8") // program choice does not affect gate count
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-10s %-8s %7d  %s\n", r.d, r.isa, len(p.Design.Gates), r.features)
	}
	return sb.String(), nil
}

// Table3 renders the gate count analysis (paper Table 3).
func (s *Sweep) Table3() string {
	var sb strings.Builder
	sb.WriteString("Table 3. Gate count analysis\n")
	fmt.Fprintf(&sb, "%-10s", "Benchmark")
	for _, d := range Designs {
		if c, ok := s.cell(s.benchmarks()[0], d); ok {
			fmt.Fprintf(&sb, " | %s tgc: %-6d       ", d, c.TotalGates)
		}
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-10s", "")
	for range Designs {
		fmt.Fprintf(&sb, " | %9s %11s", "GateCount", "%reduction")
	}
	sb.WriteString("\n")
	for _, b := range s.benchmarks() {
		fmt.Fprintf(&sb, "%-10s", b)
		for _, d := range Designs {
			c, ok := s.cell(b, d)
			if !ok {
				fmt.Fprintf(&sb, " | %9s %11s", "-", "-")
				continue
			}
			fmt.Fprintf(&sb, " | %9d %11.2f", c.Exercisable, c.ReductionPct)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table4 renders the simulation path and runtime analysis (paper Table 4).
func (s *Sweep) Table4() string {
	var sb strings.Builder
	sb.WriteString("Table 4. Simulation path and runtime analysis\n")
	fmt.Fprintf(&sb, "%-10s", "Benchmark")
	for _, d := range Designs {
		fmt.Fprintf(&sb, " | %-28s", d)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-10s", "")
	for range Designs {
		fmt.Fprintf(&sb, " | %7s %7s %12s", "created", "skipped", "sim cycles")
	}
	sb.WriteString("\n")
	for _, b := range s.benchmarks() {
		fmt.Fprintf(&sb, "%-10s", b)
		for _, d := range Designs {
			c, ok := s.cell(b, d)
			if !ok {
				fmt.Fprintf(&sb, " | %7s %7s %12s", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&sb, " | %7d %7d %12d", c.PathsCreated, c.PathsSkipped, c.SimCycles)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Figure5 renders the exercisable-gate-count reduction per benchmark as an
// ASCII bar chart (paper Figure 5).
func (s *Sweep) Figure5() string {
	return s.figure("Figure 5. Reduction in exercisable gate count (%)",
		func(c Cell) float64 { return c.ReductionPct }, 100, "%5.1f%%")
}

// Figure6 renders the number of simulated paths per benchmark (paper
// Figure 6). Bars are scaled to the sweep's maximum.
func (s *Sweep) Figure6() string {
	max := 1.0
	for _, c := range s.Cells {
		if v := float64(c.PathsCreated); v > max {
			max = v
		}
	}
	return s.figure("Figure 6. Simulation paths per benchmark",
		func(c Cell) float64 { return float64(c.PathsCreated) }, max, "%6.0f")
}

func (s *Sweep) figure(title string, value func(Cell) float64, scale float64, valFmt string) string {
	const barWidth = 40
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for _, b := range s.benchmarks() {
		fmt.Fprintf(&sb, "%s\n", b)
		for _, d := range Designs {
			c, ok := s.cell(b, d)
			if !ok {
				continue
			}
			v := value(c)
			n := int(v / scale * barWidth)
			if n > barWidth {
				n = barWidth
			}
			fmt.Fprintf(&sb, "  %-8s "+valFmt+" |%s\n", d, v, strings.Repeat("#", n))
		}
	}
	return sb.String()
}

// CSV renders the sweep as comma-separated values for external plotting.
func (s *Sweep) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark,design,total_gates,exercisable,reduction_pct,paths_created,paths_skipped,sim_cycles,wall_ms\n")
	cells := append([]Cell(nil), s.Cells...)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Benchmark != cells[j].Benchmark {
			return cells[i].Benchmark < cells[j].Benchmark
		}
		return cells[i].Design < cells[j].Design
	})
	for _, c := range cells {
		fmt.Fprintf(&sb, "%s,%s,%d,%d,%.2f,%d,%d,%d,%d\n",
			c.Benchmark, c.Design, c.TotalGates, c.Exercisable, c.ReductionPct,
			c.PathsCreated, c.PathsSkipped, c.SimCycles, c.Wall.Milliseconds())
	}
	return sb.String()
}
