package omsp430

import (
	"symsim/internal/isa"
	"symsim/internal/isa/msp430"
	"symsim/internal/netlist"
	"symsim/internal/rtl"
)

// periphPorts is the data-space interface the core drives: a read-data bus
// (RAM or memory-mapped peripheral, selected by address) and the write
// strobe/data wires the core connects after elaborating the ALU.
type periphPorts struct {
	rdata rtl.Bus // combinational read of mem[memAddr]
	wen   rtl.Bus // 1-bit wire: write strobe (driven by the core)
	wdata rtl.Bus // 16-bit wire: write data (driven by the core)
}

// peripherals elaborates the openMSP430 data space: 256x16 RAM at 0x0200
// plus the Table 2 peripheral set — 16x16 hardware multiplier, watchdog,
// GPIO and TimerA — memory-mapped below the RAM. Benchmarks that never
// touch a peripheral leave its logic unexercised, which is exactly why the
// paper reports the largest bespoke reductions on openMSP430 (Figure 5).
func (b *builder) peripherals(img *isa.Image, memAddr rtl.Bus) periphPorts {
	m := b.Module
	p := periphPorts{
		wen:   b.wire("dm_wen", 1),
		wdata: b.wire("dm_wdata", 16),
	}

	// Address decode. RAM: 0x0200..0x03FF -> bit 9 set, bits 15:10 clear.
	hiClear := m.Zero(memAddr[10:16])
	isRAM := m.AndBit(hiClear, memAddr[9])
	addrIs := func(addr uint64) netlist.NetID { return m.EqConst(memAddr, addr) }

	strobe := func(addr uint64) netlist.NetID {
		return m.AndBit(p.wen[0], addrIs(addr))
	}

	// --- Data RAM ---
	ramIdx := memAddr[1 : 1+8]
	ramWen := m.AndBit(p.wen[0], isRAM)
	ram := m.RAM("dmem", ramIdx, 16, RAMWords, img.DataVec(RAMWords, 16), ramWen, ramIdx, p.wdata)

	// --- GPIO port 1 ---
	p1in := m.Input("p1in", 8) // application inputs: X unless driven
	p1out := m.Reg("p1out", p.wdata[0:8], strobe(msp430.AddrP1OUT), 0)
	p1dir := m.Reg("p1dir", p.wdata[0:8], strobe(msp430.AddrP1DIR), 0)
	m.Output("p1out_pins", p1out)
	m.Output("p1dir_pins", p1dir)

	// --- Watchdog timer ---
	// WDTCTL bit 7 is WDTHOLD. As on real silicon the watchdog runs out
	// of reset; benchmarks disable it in their first instructions (the
	// canonical MOV #WDTHOLD, &WDTCTL prologue).
	wdtctl := m.Reg("wdtctl", p.wdata, strobe(msp430.AddrWDTCTL), 0)
	wdtHold := wdtctl[7]
	wdtD := b.wire("wdt_cnt_d", 16)
	wdtCnt := m.Reg("wdt_cnt", wdtD, m.NotBit(wdtHold), 0)
	b.drive(wdtD, m.Inc(wdtCnt))
	// Overflow raises the reset-request flag (observable output; this
	// platform does not wire it back to the reset tree).
	wdtOvfD := b.wire("wdt_ovf_d", 1)
	wdtOvf := m.Reg("wdt_ovf", wdtOvfD, m.Hi(), 0)
	b.drive(wdtOvfD, rtl.Bus{m.OrBit(wdtOvf[0], m.EqConst(wdtCnt, 0xFFFF))})
	m.Output("wdt_rst_req", wdtOvf)

	// --- 16x16 hardware multiplier ---
	mpy := m.Reg("mpy_op1", p.wdata, strobe(msp430.AddrMPY), 0)
	op2 := m.Reg("mpy_op2", p.wdata, strobe(msp430.AddrOP2), 0)
	prod := m.MulU(mpy, op2)
	resLo := prod[0:16]
	resHi := prod[16:32]

	// --- TimerA ---
	// TACTL bit 0 starts the counter; it powers up stopped (MC=stop on
	// real TimerA), so applications that never start it leave the whole
	// block unexercised.
	tactl := m.Reg("tactl", p.wdata, strobe(msp430.AddrTACTL), 0)
	taRun := tactl[0]
	tarD := b.wire("tar_d", 16)
	tar := m.Reg("tar", tarD, taRun, 0)
	b.drive(tarD, m.Inc(tar))
	taccr0 := m.Reg("taccr0", p.wdata, strobe(msp430.AddrTACCR0), 0)
	taifgD := b.wire("taifg_d", 1)
	taifg := m.Reg("taifg", taifgD, m.Hi(), 0)
	b.drive(taifgD, rtl.Bus{m.OrBit(taifg[0], m.AndBit(taRun, m.Eq(tar, taccr0)))})
	m.Output("ta_ifg", taifg)

	// --- Read mux ---
	rd := ram
	sel := func(cond netlist.NetID, val rtl.Bus) { rd = m.Mux(cond, rd, val) }
	sel(addrIs(msp430.AddrP1IN), m.ZeroExtend(p1in, 16))
	sel(addrIs(msp430.AddrP1OUT), m.ZeroExtend(p1out, 16))
	sel(addrIs(msp430.AddrP1DIR), m.ZeroExtend(p1dir, 16))
	sel(addrIs(msp430.AddrWDTCTL), wdtctl)
	sel(addrIs(msp430.AddrMPY), mpy)
	sel(addrIs(msp430.AddrOP2), op2)
	sel(addrIs(msp430.AddrRESLO), resLo)
	sel(addrIs(msp430.AddrRESHI), resHi)
	sel(addrIs(msp430.AddrTACTL), tactl)
	sel(addrIs(msp430.AddrTAR), tar)
	sel(addrIs(msp430.AddrTACCR0), taccr0)
	p.rdata = rd
	return p
}
