package omsp430

import (
	"testing"

	"symsim/internal/core"
	"symsim/internal/isa/msp430"
	"symsim/internal/netlist"
)

// branchy assembles an openMSP430 program with two input-dependent
// branches in sequence, so the co-analysis forks more than once and a
// fork budget of one leaves a genuine unexplored frontier behind.
func branchy(t *testing.T) *core.Platform {
	t.Helper()
	a := msp430.NewAsm()
	a.XWord(0)
	a.XWord(1)
	a.DisableWatchdog()
	a.LoadAbs(msp430.DataAddr(0), msp430.R4)
	a.CMPI(5, msp430.R4)
	a.JNE("first")
	a.MOVI(11, msp430.R6)
	a.Label("first")
	a.LoadAbs(msp430.DataAddr(1), msp430.R5)
	a.CMPI(3, msp430.R5)
	a.JNE("second")
	a.MOVI(22, msp430.R7)
	a.Label("second")
	a.StoreAbs(msp430.R6, msp430.DataAddr(2))
	a.StoreAbs(msp430.R7, msp430.DataAddr(3))
	a.Halt()
	p, err := Build(a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sameTieOffs(a, b []netlist.TieOff) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKillAndResumeOpenMSP430 is the end-to-end resume-soundness check on
// the paper's real core: a run killed by its fork budget writes a final
// checkpoint of the unexplored frontier; resuming from that checkpoint
// must produce exactly the tie-off list of an uninterrupted analysis.
func TestKillAndResumeOpenMSP430(t *testing.T) {
	full, err := core.Analyze(branchy(t), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete {
		t.Fatal("uninterrupted run did not complete")
	}
	if full.PathsCreated < 5 {
		t.Fatalf("program forked only %d paths; the kill leaves no frontier", full.PathsCreated)
	}

	ck := t.TempDir() + "/omsp.ckpt"
	killed, err := core.Analyze(branchy(t), core.Config{
		Budget:     core.Budget{MaxForks: 1},
		Checkpoint: &core.CheckpointConfig{Path: ck},
	})
	if err != nil {
		t.Fatal(err)
	}
	if killed.Complete {
		t.Fatal("fork-budgeted run reported Complete")
	}
	if killed.Degradation.Trip != core.TripForks {
		t.Fatalf("trip = %v, want fork-budget", killed.Degradation.Trip)
	}

	ckpt, err := core.LoadCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpt.Pending) == 0 {
		t.Fatal("checkpoint preserved no pending frontier")
	}
	resumed, err := core.Analyze(branchy(t), core.Config{Resume: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete {
		t.Fatalf("resumed run did not complete: %+v", resumed.Degradation)
	}

	if resumed.ExercisableCount != full.ExercisableCount {
		t.Errorf("resumed exercisable gates = %d, uninterrupted = %d",
			resumed.ExercisableCount, full.ExercisableCount)
	}
	if !sameTieOffs(resumed.TieOffs(), full.TieOffs()) {
		t.Error("resumed tie-off list differs from the uninterrupted run's")
	}

	// The killed run's own (degraded) dichotomy must still be sound: it
	// may over-approximate but never prune a gate the full run exercises.
	for gi := range killed.ExercisableGates {
		if !killed.ExercisableGates[gi] && full.ExercisableGates[gi] {
			t.Fatalf("gate %d pruned by the killed run but exercisable in the full run", gi)
		}
	}
}
