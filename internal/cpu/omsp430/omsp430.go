// Package omsp430 builds the gate-level openMSP430 processor of the
// paper's evaluation: a 16-bit MSP430 microcontroller with the peripheral
// set the paper lists in Table 2 — a 16x16 hardware multiplier, a
// watchdog, GPIO, and TimerA. Conditional jumps resolve from the 1-bit
// N/Z/C/V status flags, which is why openMSP430 needs far fewer
// simulation paths than bm32 and dr5 (paper §5.0.3), and the unused
// peripherals are why it shows the largest bespoke gate-count reduction
// (paper Figure 5).
//
// The core is a three-state multicycle machine: FETCH latches the
// instruction word, EXT latches the optional extension word (immediate or
// indexed offset), EXEC performs the operation. Memory is Harvard-style:
// a program ROM fetched by the PC plus a data space containing RAM at
// 0x0200 and the memory-mapped peripherals below it.
package omsp430

import (
	"fmt"

	"symsim/internal/core"
	"symsim/internal/isa"
	"symsim/internal/isa/msp430"
	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/rtl"
	"symsim/internal/vvp"
)

// Geometry of the platform.
const (
	// ROMWords is the program memory capacity (16-bit words).
	ROMWords = 1024
	// RAMWords is the data memory capacity (16-bit words).
	RAMWords = 256
	// PCBits is the program counter width (byte addresses).
	PCBits = 16
)

// Build elaborates the openMSP430 platform with the given program.
func Build(img *isa.Image) (*core.Platform, error) {
	if len(img.ROM) > ROMWords {
		return nil, fmt.Errorf("omsp430: program of %d words exceeds ROM (%d)", len(img.ROM), ROMWords)
	}
	m := rtl.NewModule("omsp430")
	b := &builder{Module: m}
	b.elaborate(img)
	if err := m.N.Freeze(); err != nil {
		return nil, err
	}
	spec, err := vvp.SpecFor(m.N, "pc")
	if err != nil {
		return nil, err
	}
	mon, err := monitorSpec(m.N)
	if err != nil {
		return nil, err
	}
	return &core.Platform{
		Name:        "omsp430",
		Design:      m.N,
		Spec:        spec,
		Monitor:     mon,
		HalfPeriod:  5,
		ResetCycles: 2,
		Specialize:  specializer(spec),
	}, nil
}

// specializer implements the paper's §3.3 fork semantics for the MSP430:
// the Xs in the monitored state (the status flags) are re-interpreted as
// ones or zeros consistent with the chosen branch direction. A conditional
// jump tests a specific flag combination, so the flag it reads can be
// pinned exactly: the set of machine states that take JEQ is precisely the
// set with Z = 1. Register-relation branches (bm32/dr5 BEQ-style) admit no
// such per-bit refinement.
func specializer(spec *vvp.StateSpec) func(st vvp.State, taken bool) vvp.State {
	var ir [16]int
	for i := range ir {
		ir[i] = spec.BitOfNet(fmt.Sprintf("ir[%d]", i))
	}
	bitN := spec.BitOfNet("sr_n")
	bitZ := spec.BitOfNet("sr_z")
	bitC := spec.BitOfNet("sr_c")
	bitV := spec.BitOfNet("sr_v")
	if bitN < 0 || bitZ < 0 || bitC < 0 || bitV < 0 {
		return nil
	}
	return func(st vvp.State, taken bool) vvp.State {
		cond := 0
		for i := 0; i < 3; i++ {
			b := st.Bits.Get(ir[10+i])
			if !b.IsKnown() {
				return st // cannot decode the jump: no refinement
			}
			if b == logic.Hi {
				cond |= 1 << i
			}
		}
		set := func(bit int, v bool) { st.Bits.Set(bit, logic.Bool(v)) }
		switch cond {
		case msp430.CondJNE:
			set(bitZ, !taken)
		case msp430.CondJEQ:
			set(bitZ, taken)
		case msp430.CondJNC:
			set(bitC, !taken)
		case msp430.CondJC:
			set(bitC, taken)
		case msp430.CondJN:
			set(bitN, taken)
		case msp430.CondJGE, msp430.CondJL:
			// taken JGE means N == V; taken JL means N != V. One of the
			// two flags can be pinned when the other is known.
			want := cond == msp430.CondJGE && taken || cond == msp430.CondJL && !taken
			n, v := st.Bits.Get(bitN), st.Bits.Get(bitV)
			switch {
			case v.IsKnown():
				set(bitN, want == (v == logic.Hi))
			case n.IsKnown():
				set(bitV, want == (n == logic.Hi))
			}
		}
		return st
	}
}

func monitorSpec(n *netlist.Netlist) (vvp.MonitorXSpec, error) {
	var mon vvp.MonitorXSpec
	var ok bool
	if mon.BranchActive, ok = n.NetByName("branch_active"); !ok {
		return mon, fmt.Errorf("omsp430: branch_active net missing")
	}
	if mon.Cond, ok = n.NetByName("branch_cond"); !ok {
		return mon, fmt.Errorf("omsp430: branch_cond net missing")
	}
	if mon.Finish, ok = n.NetByName("halted"); !ok {
		return mon, fmt.Errorf("omsp430: halted net missing")
	}
	// The monitored control-flow state is the four status flags — 1 bit
	// each, unlike the 16-bit compare-result registers of bm32/dr5.
	for _, f := range []string{"sr_n", "sr_z", "sr_c", "sr_v"} {
		id, ok := n.NetByName(f)
		if !ok {
			return mon, fmt.Errorf("omsp430: %s net missing", f)
		}
		mon.Watch = append(mon.Watch, id)
	}
	return mon, nil
}

type builder struct {
	*rtl.Module
}

func (b *builder) wire(name string, width int) rtl.Bus {
	out := make(rtl.Bus, width)
	for i := range out {
		if width == 1 {
			out[i] = b.N.AddNet(name)
		} else {
			out[i] = b.N.AddNet(fmt.Sprintf("%s[%d]", name, i))
		}
	}
	return out
}

func (b *builder) drive(dst, src rtl.Bus) {
	if len(dst) != len(src) {
		panic("omsp430: drive width mismatch")
	}
	for i := range dst {
		b.N.AddGate(netlist.KindBuf, dst[i], src[i])
	}
}

func (b *builder) elaborate(img *isa.Image) {
	m := b.Module

	// --- Architectural state ---
	pcD := b.wire("pc_d", PCBits)
	pcEn := b.wire("pc_en", 1)
	pc := m.Reg("pc", pcD, pcEn[0], 0)

	irD := b.wire("ir_d", 16)
	irEn := b.wire("ir_en", 1)
	ir := m.Reg("ir", irD, irEn[0], 0)

	extD := b.wire("ext_d", 16)
	extEn := b.wire("ext_en", 1)
	extw := m.Reg("extw", extD, extEn[0], 0)

	// FSM state: 00 FETCH, 01 EXT, 10 EXEC.
	stD := b.wire("st_d", 2)
	st := m.Reg("st", stD, m.Hi(), 0)
	stFetch := m.Named("st_fetch", rtl.Bus{m.EqConst(st, 0)})[0]
	stExt := m.EqConst(st, 1)
	stExec := m.EqConst(st, 2)

	haltD := b.wire("halt_d", 1)
	haltEn := b.wire("halt_en", 1)
	halted := m.Reg("halted_q", haltD, haltEn[0], 0)
	m.Output("halted", m.Named("halted", halted))

	// --- Program memory ---
	insn := m.ROM("prom", pc[1:1+10], 16, ROMWords, img.ROM)
	b.drive(irD, insn)
	b.drive(irEn, rtl.Bus{stFetch})
	b.drive(extD, insn)
	b.drive(extEn, rtl.Bus{stExt})

	// --- Decode (from IR during EXT/EXEC; from the fresh instruction
	// word during FETCH to pick the next state) ---
	type decoded struct {
		fmt1, fmt2, jump    netlist.NetID
		srcReg, dstReg      rtl.Bus
		asIdx, asImm, adIdx netlist.NetID
		needExt             netlist.NetID
	}
	decode := func(w rtl.Bus) decoded {
		var d decoded
		// Format I opcodes occupy 4..15: any of the top two opcode bits
		// set. Jumps are 001x; Format II is the 000100 prefix.
		d.fmt1 = m.OrBit(w[15], w[14])
		d.jump = m.AndBit(m.NotBit(w[15]), m.AndBit(m.NotBit(w[14]), w[13]))
		d.fmt2 = m.EqConst(w[10:16], 0b000100)
		d.srcReg = w[8:12]
		d.dstReg = w[0:4]
		as := w[4:6]
		d.asIdx = m.AndBit(m.NotBit(as[1]), as[0]) // As == 01: x(Rn)
		d.asImm = m.AndBit(as[1], as[0])           // As == 11, src=R0: #imm
		d.adIdx = w[7]
		srcMem := m.AndBit(m.OrBit(d.fmt1, d.fmt2), d.asIdx)
		immSrc := m.AndBit(d.fmt1, d.asImm)
		dstMem := m.AndBit(d.fmt1, d.adIdx)
		d.needExt = m.OrBit(srcMem, m.OrBit(immSrc, dstMem))
		return d
	}
	dNow := decode(insn) // used during FETCH for next-state selection
	d := decode(ir)      // used during EXEC

	op := ir[12:16]
	opIs := func(code uint64) netlist.NetID { return m.AndBit(d.fmt1, m.EqConst(op, code)) }
	isMOV := opIs(msp430.OpMOV)
	isADD := opIs(msp430.OpADD)
	isADDC := opIs(msp430.OpADDC)
	isSUBC := opIs(msp430.OpSUBC)
	isSUB := opIs(msp430.OpSUB)
	isCMP := opIs(msp430.OpCMP)
	isBIT := opIs(msp430.OpBIT)
	isBIC := opIs(msp430.OpBIC)
	isBIS := opIs(msp430.OpBIS)
	isXOR := opIs(msp430.OpXOR)
	isAND := opIs(msp430.OpAND)

	op2 := ir[7:10]
	op2Is := func(code uint64) netlist.NetID { return m.AndBit(d.fmt2, m.EqConst(op2, code)) }
	isRRC := op2Is(msp430.Op2RRC)
	isSWPB := op2Is(msp430.Op2SWPB)
	isRRA := op2Is(msp430.Op2RRA)
	isSXT := op2Is(msp430.Op2SXT)

	// --- Register file (16 x 16) ---
	wbData := b.wire("wb_data", 16)
	wbEn := b.wire("wb_en", 1)
	wbAddr := b.wire("wb_addr", 4)
	ports := m.RegFile("rf", 16, 16, wbEn[0], wbAddr, wbData, []rtl.Bus{d.srcReg, d.dstReg})
	srcRegVal, dstRegVal := ports[0], ports[1]

	// --- Status register flags (the monitored control-flow state) ---
	nD := b.wire("sr_n_d", 1)
	zD := b.wire("sr_z_d", 1)
	cD := b.wire("sr_c_d", 1)
	vD := b.wire("sr_v_d", 1)
	flagEn := b.wire("flag_en", 1)
	srN := m.Reg("sr_n", nD, flagEn[0], 0)[0]
	srZ := m.Reg("sr_z", zD, flagEn[0], 0)[0]
	srC := m.Reg("sr_c", cD, flagEn[0], 0)[0]
	srV := m.Reg("sr_v", vD, flagEn[0], 0)[0]

	// --- Data-space access (RAM + peripherals) ---
	// At most one memory operand per instruction: its address is
	// reg[base] + EXTW, base = src for indexed/Format II source, dst for
	// indexed destination.
	srcMemF1 := m.AndBit(d.fmt1, d.asIdx)
	srcMem := m.OrBit(srcMemF1, m.AndBit(d.fmt2, d.asIdx))
	dstMem := m.AndBit(d.fmt1, d.adIdx)
	// The Format II operand register lives in the dst field, so only
	// Format I indexed sources use the src register as base.
	baseVal := m.Mux(srcMemF1, dstRegVal, srcRegVal)
	memAddr, _ := m.Add(baseVal, extw, m.Lo())

	periph := b.peripherals(img, memAddr)

	// --- Operand selection ---
	srcVal := srcRegVal
	srcVal = m.Mux(m.AndBit(d.fmt1, d.asImm), srcVal, extw)
	srcVal = m.Mux(srcMem, srcVal, periph.rdata)
	dstVal := m.Mux(dstMem, dstRegVal, periph.rdata)
	// Format II operates on its single (dst-field) operand, register or
	// memory sourced via As.
	uniVal := m.Mux(srcMem, dstRegVal, periph.rdata)

	// --- ALU ---
	sum16 := func(a, bb rtl.Bus, cin netlist.NetID) (rtl.Bus, netlist.NetID) {
		return m.Add(a, bb, cin)
	}
	notSrc := m.Not(srcVal)
	isSubLike := m.OrBit(isSUB, m.OrBit(isSUBC, isCMP))
	addA := dstVal
	addB := m.Mux(isSubLike, srcVal, notSrc)
	cin := m.MuxBit(isSubLike, m.Lo(), m.Hi())
	cin = m.MuxBit(m.OrBit(isADDC, isSUBC), cin, srC)
	addRes, cout := sum16(addA, addB, cin)

	// Signed overflow for add/sub.
	vAdd := m.AndBit(m.XnorBit(addA[15], addB[15]), m.XorBit(addRes[15], addA[15]))

	andRes := m.And(dstVal, srcVal)
	res := addRes
	sel := func(cond netlist.NetID, val rtl.Bus) { res = m.Mux(cond, res, val) }
	sel(isMOV, srcVal)
	sel(m.OrBit(isAND, isBIT), andRes)
	sel(isBIC, m.And(dstVal, notSrc))
	sel(isBIS, m.Or(dstVal, srcVal))
	sel(isXOR, m.Xor(dstVal, srcVal))
	// Format II results.
	rraRes := rtl.Cat(uniVal[1:16], rtl.Bus{uniVal[15]})
	rrcRes := rtl.Cat(uniVal[1:16], rtl.Bus{srC})
	swpbRes := rtl.Cat(uniVal[8:16], uniVal[0:8])
	sxtRes := m.SignExtend(uniVal[0:8], 16)
	sel(isRRA, rraRes)
	sel(isRRC, rrcRes)
	sel(isSWPB, swpbRes)
	sel(isSXT, sxtRes)

	// --- Flags ---
	resZ := m.Zero(res)
	resN := res[15]
	arith := m.OrBit(isADD, m.OrBit(isADDC, isSubLike))
	logical := m.OrBit(isAND, m.OrBit(isBIT, m.OrBit(isXOR, isSXT)))
	shifty := m.OrBit(isRRA, isRRC)
	setsFlags := m.OrBit(arith, m.OrBit(logical, shifty))
	b.drive(flagEn, rtl.Bus{m.AndBit(stExec, setsFlags)})
	b.drive(nD, rtl.Bus{resN})
	b.drive(zD, rtl.Bus{resZ})
	cNew := m.MuxBit(arith, m.NotBit(resZ), cout) // logical: C = ~Z
	cNew = m.MuxBit(shifty, cNew, uniVal[0])      // shifts: C = LSB out
	b.drive(cD, rtl.Bus{cNew})
	vNew := m.MuxBit(arith, m.Lo(), vAdd)
	b.drive(vD, rtl.Bus{vNew})

	// --- Jump resolution from the 1-bit flags (paper §5.0.3) ---
	cond3 := ir[10:13]
	nxv := m.XorBit(srN, srV)
	condRaw := m.MuxWord(cond3, []rtl.Bus{
		{m.NotBit(srZ)}, // JNE
		{srZ},           // JEQ
		{m.NotBit(srC)}, // JNC
		{srC},           // JC
		{srN},           // JN
		{m.NotBit(nxv)}, // JGE
		{nxv},           // JL
		{m.Hi()},        // JMP
	})
	isCondJump := m.AndBit(d.jump, m.NotBit(m.EqConst(cond3, msp430.CondJMP)))
	cond := m.Named("branch_cond", condRaw)[0]
	m.Named("branch_active", rtl.Bus{m.AndBit(stExec, isCondJump)})

	// --- Next PC and state ---
	pc2, _ := m.Add(pc, m.Const(PCBits, 2), m.Lo())
	// Jump target: pc + 2*offset with the 10-bit offset sign-extended;
	// pc already points past the jump word at EXEC.
	off := m.SignExtend(ir[0:10], PCBits-1)
	offBytes := rtl.Cat(rtl.Bus{m.Lo()}, off)
	jTarget, _ := m.Add(pc, offBytes, m.Lo())
	jumpTaken := m.AndBit(d.jump, cond)
	execPC := m.Mux(jumpTaken, pc, jTarget)
	nextPC := m.Mux(stExec, pc2, execPC)
	pcAdvance := m.OrBit(stFetch, m.OrBit(stExt, m.AndBit(stExec, jumpTaken)))
	b.drive(pcD, nextPC)
	b.drive(pcEn, rtl.Bus{pcAdvance})

	// Terminating condition: taken JMP with offset -1 (jump to self).
	selfJump := m.AndBit(jumpTaken, m.EqConst(ir[0:10], 0x3FF))
	b.drive(haltD, rtl.Bus{m.Hi()})
	b.drive(haltEn, rtl.Bus{m.AndBit(stExec, selfJump)})

	// Next state: FETCH -> (EXT | EXEC) -> EXEC -> FETCH.
	nextSt := m.Mux(stFetch,
		m.Mux(stExt, m.Const(2, 0) /* EXEC done -> FETCH */, m.Const(2, 2)),
		m.Mux(dNow.needExt, m.Const(2, 2), m.Const(2, 1)))
	b.drive(stD, nextSt)

	// --- Write-back ---
	writesReg1 := m.AndBit(d.fmt1, m.AndBit(m.NotBit(d.adIdx),
		m.NotBit(m.OrBit(isCMP, isBIT))))
	writesReg2 := m.AndBit(d.fmt2, m.NotBit(d.asIdx))
	b.drive(wbEn, rtl.Bus{m.AndBit(stExec, m.OrBit(writesReg1, writesReg2))})
	b.drive(wbAddr, d.dstReg)
	b.drive(wbData, res)

	// Memory write-back (indexed destination, or Format II on memory).
	memWrite := m.AndBit(stExec, m.OrBit(
		m.AndBit(d.fmt1, m.AndBit(d.adIdx, m.NotBit(m.OrBit(isCMP, isBIT)))),
		m.AndBit(d.fmt2, d.asIdx)))
	b.drive(periph.wen, rtl.Bus{memWrite})
	b.drive(periph.wdata, res)

	m.Output("pc_out", pc)
	m.Output("wb_out", wbData)
}
