package omsp430

import (
	"testing"

	"symsim/internal/cpu/cputest"
	"symsim/internal/isa/msp430"
	"symsim/internal/vvp"
)

func run(t *testing.T, build func(a *msp430.Asm)) *vvp.Simulator {
	t.Helper()
	a := msp430.NewAsm()
	build(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cputest.Run(p, 200000)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func memWord(t *testing.T, sim *vvp.Simulator, index int, want uint16) {
	t.Helper()
	got, err := cputest.MemUint(sim, "dmem", index)
	if err != nil {
		t.Fatal(err)
	}
	if uint16(got) != want {
		t.Errorf("dmem[%d] = %#x, want %#x", index, got, want)
	}
}

func TestHaltOnly(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) { a.Halt() })
	if sim.Cycles() > 20 {
		t.Errorf("halt took %d cycles", sim.Cycles())
	}
}

func TestMoveAndArith(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		a.MOVI(40, msp430.R4)
		a.MOVI(2, msp430.R5)
		a.MOV(msp430.R4, msp430.R6)
		a.ADD(msp430.R5, msp430.R6) // 42
		a.StoreAbs(msp430.R6, msp430.DataAddr(0))
		a.MOV(msp430.R4, msp430.R7)
		a.SUB(msp430.R5, msp430.R7) // 38
		a.StoreAbs(msp430.R7, msp430.DataAddr(1))
		a.Halt()
	})
	memWord(t, sim, 0, 42)
	memWord(t, sim, 1, 38)
}

func TestLogicalOps(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		a.MOVI(0x0F0F, msp430.R4)
		a.MOVI(0x00FF, msp430.R5)
		a.MOV(msp430.R4, msp430.R6)
		a.AND(msp430.R5, msp430.R6) // 0x000F
		a.StoreAbs(msp430.R6, msp430.DataAddr(0))
		a.MOV(msp430.R4, msp430.R7)
		a.BIS(msp430.R5, msp430.R7) // 0x0FFF
		a.StoreAbs(msp430.R7, msp430.DataAddr(1))
		a.MOV(msp430.R4, msp430.R8)
		a.XOR(msp430.R5, msp430.R8) // 0x0FF0
		a.StoreAbs(msp430.R8, msp430.DataAddr(2))
		a.MOV(msp430.R4, msp430.R9)
		a.BIC(msp430.R5, msp430.R9) // 0x0F00
		a.StoreAbs(msp430.R9, msp430.DataAddr(3))
		a.Halt()
	})
	memWord(t, sim, 0, 0x000F)
	memWord(t, sim, 1, 0x0FFF)
	memWord(t, sim, 2, 0x0FF0)
	memWord(t, sim, 3, 0x0F00)
}

func TestFormatII(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		a.MOVI(-64, msp430.R4)
		a.RRA(msp430.R4) // -32
		a.StoreAbs(msp430.R4, msp430.DataAddr(0))
		a.MOVI(0x1234, msp430.R5)
		a.SWPB(msp430.R5) // 0x3412
		a.StoreAbs(msp430.R5, msp430.DataAddr(1))
		a.MOVI(0x0080, msp430.R6)
		a.SXT(msp430.R6) // 0xFF80
		a.StoreAbs(msp430.R6, msp430.DataAddr(2))
		// RRC: set carry via CMP (borrow clear -> C=1), then rotate.
		a.MOVI(5, msp430.R7)
		a.CMPI(3, msp430.R7) // 5-3: C=1 (no borrow)
		a.MOVI(2, msp430.R8)
		a.RRC(msp430.R8) // 0x8001
		a.StoreAbs(msp430.R8, msp430.DataAddr(3))
		a.Halt()
	})
	memWord(t, sim, 0, 0xFFE0)
	memWord(t, sim, 1, 0x3412)
	memWord(t, sim, 2, 0xFF80)
	memWord(t, sim, 3, 0x8001)
}

func TestLoadStoreIndexed(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		a.MOVI(msp430.DataAddr(8), msp430.R4) // base
		a.MOVI(0xBEEF, msp430.R5)
		a.MOVRM(msp430.R5, 4, msp430.R4) // mem[base+4] = word 10
		a.MOVM(4, msp430.R4, msp430.R6)  // load back
		a.ADDI(1, msp430.R6)
		a.StoreAbs(msp430.R6, msp430.DataAddr(0))
		a.Halt()
	})
	memWord(t, sim, 10, 0xBEEF)
	memWord(t, sim, 0, 0xBEF0)
}

func TestConditionalJumps(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		a.MOVI(0, msp430.R10)

		a.MOVI(5, msp430.R4)
		a.CMPI(5, msp430.R4)
		a.JEQ("eq_ok")
		a.Halt()
		a.Label("eq_ok")
		a.BISI(1, msp430.R10)

		a.CMPI(7, msp430.R4) // 5-7: borrow -> C=0, N set
		a.JNC("lt_ok")
		a.Halt()
		a.Label("lt_ok")
		a.BISI(2, msp430.R10)

		a.MOVI(-3, msp430.R5)
		a.CMPI(2, msp430.R5) // -3 - 2 = -5: N^V -> JL taken
		a.JL("jl_ok")
		a.Halt()
		a.Label("jl_ok")
		a.BISI(4, msp430.R10)

		a.MOVI(9, msp430.R6)
		a.CMPI(2, msp430.R6)
		a.JGE("jge_ok")
		a.Halt()
		a.Label("jge_ok")
		a.BISI(8, msp430.R10)

		a.CMPI(9, msp430.R6)
		a.JNE("wrong") // not taken
		a.BISI(16, msp430.R10)
		a.Label("wrong")
		a.StoreAbs(msp430.R10, msp430.DataAddr(0))
		a.Halt()
	})
	memWord(t, sim, 0, 31)
}

func TestLoopSum(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		a.MOVI(10, msp430.R4)
		a.MOVI(0, msp430.R5)
		a.Label("loop")
		a.ADD(msp430.R4, msp430.R5)
		a.SUBI(1, msp430.R4)
		a.JNE("loop")
		a.StoreAbs(msp430.R5, msp430.DataAddr(0))
		a.Halt()
	})
	memWord(t, sim, 0, 55)
}

func TestHardwareMultiplierPeripheral(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		a.MOVI(1234, msp430.R4)
		a.StoreAbs(msp430.R4, msp430.AddrMPY)
		a.MOVI(567, msp430.R5)
		a.StoreAbs(msp430.R5, msp430.AddrOP2)
		a.LoadAbs(msp430.AddrRESLO, msp430.R6)
		a.StoreAbs(msp430.R6, msp430.DataAddr(0))
		a.LoadAbs(msp430.AddrRESHI, msp430.R7)
		a.StoreAbs(msp430.R7, msp430.DataAddr(1))
		a.Halt()
	})
	const prod = 1234 * 567
	memWord(t, sim, 0, uint16(prod&0xFFFF))
	memWord(t, sim, 1, uint16(prod>>16))
}

func TestWatchdogRunsUntilDisabled(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		// Read WDTCTL back and also snapshot the count.
		a.LoadAbs(msp430.AddrWDTCTL, msp430.R4)
		a.StoreAbs(msp430.R4, msp430.DataAddr(0))
		a.Halt()
	})
	memWord(t, sim, 0, msp430.WDTHold)
	// The counter ran for the cycles before the disable store: nonzero
	// but small.
	cnt, err := cputest.BusValue(sim, "wdt_cnt")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := cnt.Uint64()
	if !ok || v == 0 || v > 64 {
		t.Errorf("wdt_cnt = %s, want small nonzero count", cnt)
	}
}

func TestTimerAStoppedByDefaultAndCounts(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		// Timer must read zero while stopped.
		a.LoadAbs(msp430.AddrTAR, msp430.R4)
		a.StoreAbs(msp430.R4, msp430.DataAddr(0))
		// Start it, burn a few instructions, read it.
		a.MOVI(1, msp430.R5)
		a.StoreAbs(msp430.R5, msp430.AddrTACTL)
		a.MOV(msp430.R5, msp430.R6)
		a.MOV(msp430.R5, msp430.R6)
		a.LoadAbs(msp430.AddrTAR, msp430.R7)
		a.StoreAbs(msp430.R7, msp430.DataAddr(1))
		a.Halt()
	})
	memWord(t, sim, 0, 0)
	got, err := cputest.MemUint(sim, "dmem", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("TimerA did not count after being started")
	}
}

func TestGPIOOutput(t *testing.T) {
	sim := run(t, func(a *msp430.Asm) {
		a.DisableWatchdog()
		a.MOVI(0xA5, msp430.R4)
		a.StoreAbs(msp430.R4, msp430.AddrP1OUT)
		a.MOVI(0xFF, msp430.R5)
		a.StoreAbs(msp430.R5, msp430.AddrP1DIR)
		a.Halt()
	})
	out, err := cputest.BusValue(sim, "p1out")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := out.Uint64(); !ok || v != 0xA5 {
		t.Errorf("p1out = %s, want 0xA5", out)
	}
}

func TestGateCountPlausible(t *testing.T) {
	a := msp430.NewAsm()
	a.Halt()
	p, err := Build(a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	st := p.Design.Stats()
	// Paper openMSP430: 7218 gates. Same order of magnitude required,
	// smaller than bm32.
	if st.Gates < 2000 || st.Gates > 30000 {
		t.Errorf("omsp430 gate count %d implausible (%s)", st.Gates, st)
	}
	t.Logf("omsp430: %s", st)
}

func TestMonitorWatchesFourFlags(t *testing.T) {
	a := msp430.NewAsm()
	a.Halt()
	p, err := Build(a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Monitor.Watch) != 4 {
		t.Errorf("watch width %d, want 4 (NZCV)", len(p.Monitor.Watch))
	}
}
