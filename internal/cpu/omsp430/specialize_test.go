package omsp430

import (
	"testing"

	"symsim/internal/core"
	"symsim/internal/isa/msp430"
	"symsim/internal/logic"
	"symsim/internal/vvp"
)

// TestSpecializePinsTestedFlag captures a real halt state (at a JNE after
// a CMP on unknown data) and checks that Specialize re-interprets the
// monitored Z flag per the chosen branch direction (paper §3.3).
func TestSpecializePinsTestedFlag(t *testing.T) {
	a := msp430.NewAsm()
	a.XWord(0)
	a.DisableWatchdog()
	a.LoadAbs(msp430.DataAddr(0), msp430.R4)
	a.CMPI(5, msp430.R4)
	a.JNE("neq")
	a.Halt()
	a.Label("neq")
	a.Halt()
	p, err := Build(a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	var halt *vvp.State
	_, err = core.Analyze(p, core.Config{OnHalt: func(id int, st vvp.State) {
		if halt == nil {
			c := st.Clone()
			halt = &c
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if halt == nil {
		t.Fatal("no halt captured")
	}
	zBit := p.Spec.BitOfNet("sr_z")
	if zBit < 0 {
		t.Fatal("no Z flag state bit")
	}
	if got := halt.Bits.Get(zBit); got != logic.X {
		t.Fatalf("Z at halt = %v, want X (CMP on unknown data)", got)
	}
	// JNE taken means Z = 0; not taken means Z = 1.
	taken := p.Specialize(halt.Clone(), true)
	if got := taken.Bits.Get(zBit); got != logic.Lo {
		t.Errorf("taken JNE: Z = %v, want 0", got)
	}
	notTaken := p.Specialize(halt.Clone(), false)
	if got := notTaken.Bits.Get(zBit); got != logic.Hi {
		t.Errorf("not-taken JNE: Z = %v, want 1", got)
	}
}

// TestSpecializeJLPinsAgainstKnownV checks the two-flag JGE/JL refinement:
// with V known, N is pinned to satisfy the relation.
func TestSpecializeJLPinsAgainstKnownV(t *testing.T) {
	a := msp430.NewAsm()
	a.XWord(0)
	a.DisableWatchdog()
	a.LoadAbs(msp430.DataAddr(0), msp430.R4)
	a.CMPI(5, msp430.R4)
	a.JL("less")
	a.Halt()
	a.Label("less")
	a.Halt()
	p, err := Build(a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	var halt *vvp.State
	if _, err := core.Analyze(p, core.Config{OnHalt: func(id int, st vvp.State) {
		if halt == nil {
			c := st.Clone()
			halt = &c
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if halt == nil {
		t.Fatal("no halt captured")
	}
	nBit := p.Spec.BitOfNet("sr_n")
	vBit := p.Spec.BitOfNet("sr_v")
	// Pin V to 0 in the captured state, then specialize: taken JL needs
	// N != V, so N must become 1.
	st := halt.Clone()
	st.Bits.Set(vBit, logic.Lo)
	taken := p.Specialize(st, true)
	if got := taken.Bits.Get(nBit); got != logic.Hi {
		t.Errorf("taken JL with V=0: N = %v, want 1", got)
	}
	// Both flags unknown: no refinement possible, state unchanged.
	st2 := halt.Clone()
	before := st2.Bits.Clone()
	out := p.Specialize(st2, true)
	if !out.Bits.Equal(before) {
		t.Error("JL with both flags unknown should not modify the state")
	}
}
