// Package cputest provides the shared concrete-execution harness the three
// processor packages use in their functional tests and that the bespoke
// validation flow reuses: run a platform with fully known inputs to the
// terminating condition, then inspect registers and memory.
package cputest

import (
	"fmt"

	"symsim/internal/core"
	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/vvp"
)

// Run simulates the platform concretely (whatever X remains in the image
// stays X) until the design's finish net rises or maxCycles elapse.
// It returns the simulator stopped at the finish step.
func Run(p *core.Platform, maxCycles uint64) (*vvp.Simulator, error) {
	if err := p.Design.Freeze(); err != nil {
		return nil, err
	}
	sim := vvp.New(p.Design, vvp.Options{})
	sim.SetMonitorX(&p.Monitor)
	sim.BindStimulus(p.Stimulus())
	for {
		status, err := sim.Step()
		if err != nil {
			return sim, err
		}
		switch status {
		case vvp.Finished:
			return sim, nil
		case vvp.HaltX:
			return sim, fmt.Errorf("cputest: unexpected X halt at t=%d pc=%s (concrete run should not fork)",
				sim.Now(), sim.VecValue(p.Spec.PC))
		}
		if sim.Cycles() > maxCycles {
			return sim, fmt.Errorf("cputest: no finish within %d cycles (pc=%s)", maxCycles, sim.VecValue(p.Spec.PC))
		}
	}
}

// MemWord reads word index of the named memory as a ternary vector.
func MemWord(sim *vvp.Simulator, memName string, index int) (logic.Vec, error) {
	id, ok := sim.Design().MemByName(memName)
	if !ok {
		return logic.Vec{}, fmt.Errorf("cputest: no memory %q", memName)
	}
	return sim.MemWord(id, index), nil
}

// MemUint reads word index of the named memory as an unsigned integer; it
// fails if any bit is X.
func MemUint(sim *vvp.Simulator, memName string, index int) (uint64, error) {
	v, err := MemWord(sim, memName, index)
	if err != nil {
		return 0, err
	}
	u, ok := v.Uint64()
	if !ok {
		return 0, fmt.Errorf("cputest: %s[%d] = %s contains X", memName, index, v)
	}
	return u, nil
}

// SetMemWord overwrites one word of the named memory before a run
// (concrete-input injection for validation runs).
func SetMemWord(sim *vvp.Simulator, memName string, index int, v logic.Vec) error {
	id, ok := sim.Design().MemByName(memName)
	if !ok {
		return fmt.Errorf("cputest: no memory %q", memName)
	}
	sim.SetMemWord(id, index, v)
	return nil
}

// NetValue reads a named scalar net.
func NetValue(sim *vvp.Simulator, name string) (logic.Value, error) {
	id, ok := sim.Design().NetByName(name)
	if !ok {
		return logic.X, fmt.Errorf("cputest: no net %q", name)
	}
	return sim.Value(id), nil
}

// BusValue reads a named bus ("name[0]", "name[1]", ... or scalar "name").
func BusValue(sim *vvp.Simulator, name string) (logic.Vec, error) {
	d := sim.Design()
	if id, ok := d.NetByName(name); ok {
		v := logic.NewVec(1)
		v.Set(0, sim.Value(id))
		return v, nil
	}
	var nets []netlist.NetID
	for i := 0; ; i++ {
		id, ok := d.NetByName(fmt.Sprintf("%s[%d]", name, i))
		if !ok {
			break
		}
		nets = append(nets, id)
	}
	if len(nets) == 0 {
		return logic.Vec{}, fmt.Errorf("cputest: no bus %q", name)
	}
	return sim.VecValue(nets), nil
}
