// Package dr5 builds the gate-level RV32E processor of the paper's
// evaluation (darkRiscV: 16 integer registers, 3-stage pipeline in the
// original; implemented here as a two-state multicycle core, which leaves
// the symbolic-analysis-relevant properties intact — see DESIGN.md).
// dr5 has no hardware multiplier, so multiplication is software — the
// property behind the mult benchmark's multiple simulation paths in paper
// §5.0.3. Conditional branches resolve from the subtraction of the operand
// registers; the low 16 bits of that difference are the monitored
// control-flow signals ("a 16-bit register is used to indicate branch
// conditions", paper Figure 6).
package dr5

import (
	"fmt"

	"symsim/internal/core"
	"symsim/internal/isa"
	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/rtl"
	"symsim/internal/vvp"
)

// Geometry of the core.
const (
	// ROMWords is the program memory capacity (32-bit words).
	ROMWords = 1024
	// RAMWords is the data memory capacity (32-bit words).
	RAMWords = 256
	// PCBits is the program-counter width (byte addresses).
	PCBits = 16
	// WatchBits is the width of the monitored compare-result bus.
	WatchBits = 16
)

// Build elaborates the dr5 core with the given program preloaded and
// returns the co-analysis platform for it.
func Build(img *isa.Image) (*core.Platform, error) {
	if len(img.ROM) > ROMWords {
		return nil, fmt.Errorf("dr5: program of %d words exceeds ROM (%d)", len(img.ROM), ROMWords)
	}
	m := rtl.NewModule("dr5")
	b := &builder{Module: m}
	b.elaborate(img)
	if err := m.N.Freeze(); err != nil {
		return nil, err
	}
	spec, err := vvp.SpecFor(m.N, "pc")
	if err != nil {
		return nil, err
	}
	mon, err := monitorSpec(m.N)
	if err != nil {
		return nil, err
	}
	return &core.Platform{
		Name:        "dr5",
		Design:      m.N,
		Spec:        spec,
		Monitor:     mon,
		HalfPeriod:  5,
		ResetCycles: 2,
	}, nil
}

func monitorSpec(n *netlist.Netlist) (vvp.MonitorXSpec, error) {
	var mon vvp.MonitorXSpec
	var ok bool
	if mon.BranchActive, ok = n.NetByName("branch_active"); !ok {
		return mon, fmt.Errorf("dr5: branch_active net missing")
	}
	if mon.Cond, ok = n.NetByName("branch_cond"); !ok {
		return mon, fmt.Errorf("dr5: branch_cond net missing")
	}
	if mon.Finish, ok = n.NetByName("halted"); !ok {
		return mon, fmt.Errorf("dr5: halted net missing")
	}
	for i := 0; i < WatchBits; i++ {
		id, ok := n.NetByName(fmt.Sprintf("cmp_res[%d]", i))
		if !ok {
			return mon, fmt.Errorf("dr5: cmp_res[%d] net missing", i)
		}
		mon.Watch = append(mon.Watch, id)
	}
	return mon, nil
}

type builder struct {
	*rtl.Module
}

// wire declares a named bus to be driven later with drive().
func (b *builder) wire(name string, width int) rtl.Bus {
	out := make(rtl.Bus, width)
	for i := range out {
		out[i] = b.N.AddNet(wname(name, width, i))
	}
	return out
}

func wname(name string, width, i int) string {
	if width == 1 {
		return name
	}
	return fmt.Sprintf("%s[%d]", name, i)
}

// drive connects src to the declared wire dst through buffers.
func (b *builder) drive(dst, src rtl.Bus) {
	if len(dst) != len(src) {
		panic("dr5: drive width mismatch")
	}
	for i := range dst {
		b.N.AddGate(netlist.KindBuf, dst[i], src[i])
	}
}

func (b *builder) elaborate(img *isa.Image) {
	m := b.Module

	// --- Architectural state ---
	pcD := b.wire("pc_d", PCBits)
	pcEn := b.wire("pc_en", 1)
	pc := m.Reg("pc", pcD, pcEn[0], 0)

	irD := b.wire("ir_d", 32)
	irEn := b.wire("ir_en", 1)
	ir := m.Reg("ir", irD, irEn[0], 0)

	// ph: 0 = FETCH, 1 = EXEC. Toggles every cycle.
	phD := b.wire("ph_d", 1)
	ph := m.Reg("ph", phD, m.Hi(), 0)
	exec := ph[0]
	fetch := m.NotBit(exec)
	b.drive(phD, rtl.Bus{m.NotBit(ph[0])})

	haltD := b.wire("halt_d", 1)
	haltEn := b.wire("halt_en", 1)
	halted := m.Reg("halted_q", haltD, haltEn[0], 0)
	m.Output("halted", m.Named("halted", halted))

	// --- Program memory ---
	romAddr := pc[2 : 2+10] // word index of the 16-bit byte PC
	insn := m.ROM("prom", romAddr, 32, ROMWords, img.ROM)
	b.drive(irD, insn)
	b.drive(irEn, rtl.Bus{fetch})

	// --- Decode ---
	opcode := ir[0:7]
	rd := ir[7:11] // RV32E: 4-bit register numbers
	funct3 := ir[12:15]
	rs1 := ir[15:19]
	rs2 := ir[20:24]
	f7b5 := ir[30]

	isLUI := m.EqConst(opcode, 0b0110111)
	isALUImm := m.EqConst(opcode, 0b0010011)
	isALU := m.EqConst(opcode, 0b0110011)
	isLoad := m.EqConst(opcode, 0b0000011)
	isStore := m.EqConst(opcode, 0b0100011)
	isBranch := m.EqConst(opcode, 0b1100011)
	isJAL := m.EqConst(opcode, 0b1101111)
	isJALR := m.EqConst(opcode, 0b1100111)

	// Immediates (sign-extended to 32 where used as data, 16 for PC math).
	immI := m.SignExtend(ir[20:32], 32)
	immS := m.SignExtend(rtl.Cat(ir[7:12], ir[25:32]), 32)
	immB := m.SignExtend(rtl.Cat(rtl.Bus{m.Lo()}, ir[8:12], ir[25:31], rtl.Bus{ir[7]}, rtl.Bus{ir[31]}), PCBits)
	immU := rtl.Cat(m.Const(12, 0), ir[12:32])
	immJ := m.SignExtend(rtl.Cat(rtl.Bus{m.Lo()}, ir[21:31], rtl.Bus{ir[20]}, ir[12:20], rtl.Bus{ir[31]}), PCBits)

	// --- Register file (16 x 32, x0 hardwired to zero by write masking) ---
	wbData := b.wire("wb_data", 32)
	wbEn := b.wire("wb_en", 1)
	ports := m.RegFile("rf", 16, 32, wbEn[0], rd, wbData, []rtl.Bus{rs1, rs2})
	rs1d, rs2d := ports[0], ports[1]

	// --- ALU ---
	useImm := m.OrBit(isALUImm, m.OrBit(isLoad, m.OrBit(isStore, isJALR)))
	imm := m.Mux(isStore, immI, immS)
	bOp := m.Mux(useImm, rs2d, imm)
	subSel := m.AndBit(isALU, f7b5) // SUB only for R-type
	addB := m.Mux(subSel, bOp, m.Not(bOp))
	addRes, _ := m.Add(rs1d, addB, subSel)

	// Shift amount: the rs2 field for immediate shifts, the low bits of
	// rs2's value for R-type shifts.
	shamt := m.Mux(isALU, ir[20:25], rs2d[0:5])

	sll := m.ShiftLeft(rs1d, shamt)
	srl := m.ShiftRight(rs1d, shamt, false)
	sra := m.ShiftRight(rs1d, shamt, true)
	srx := m.Mux(f7b5, srl, sra)

	ltS := m.LtS(rs1d, bOp)
	ltU := m.LtU(rs1d, bOp)
	sltRes := m.ZeroExtend(rtl.Bus{ltS}, 32)
	sltuRes := m.ZeroExtend(rtl.Bus{ltU}, 32)

	aluRes := m.MuxWord(funct3, []rtl.Bus{
		addRes,           // 000 add/sub
		sll,              // 001 sll
		sltRes,           // 010 slt
		sltuRes,          // 011 sltu
		m.Xor(rs1d, bOp), // 100 xor
		srx,              // 101 srl/sra
		m.Or(rs1d, bOp),  // 110 or
		m.And(rs1d, bOp), // 111 and
	})

	// --- Branch comparison: subtraction of the operand registers. The
	// low 16 bits of the difference are the monitored control-flow
	// signals (paper §5.0.3). ---
	diff, noBorrow := m.Sub(rs1d, rs2d)
	m.Named("cmp_res", diff[0:WatchBits])
	eq := m.Eq(rs1d, rs2d)
	bLtS := m.LtS(rs1d, rs2d)
	bLtU := m.NotBit(noBorrow)
	condRaw := m.MuxWord(funct3, []rtl.Bus{
		{eq},             // 000 beq
		{m.NotBit(eq)},   // 001 bne
		{m.Lo()},         // 010 (unused)
		{m.Lo()},         // 011 (unused)
		{bLtS},           // 100 blt
		{m.NotBit(bLtS)}, // 101 bge
		{bLtU},           // 110 bltu
		{m.NotBit(bLtU)}, // 111 bgeu
	})
	cond := m.Named("branch_cond", condRaw)[0]
	m.Named("branch_active", rtl.Bus{m.AndBit(exec, isBranch)})

	// --- Next PC ---
	pc4, _ := m.Add(pc, m.Const(PCBits, 4), m.Lo())
	brTarget, _ := m.Add(pc, immB, m.Lo())
	jalTarget, _ := m.Add(pc, immJ, m.Lo())
	jalrTarget := addRes[0:PCBits]
	target := m.Mux(isJAL, m.Mux(isJALR, brTarget, jalrTarget), jalTarget)

	jump := m.OrBit(isJAL, isJALR)
	taken := m.OrBit(m.AndBit(isBranch, cond), jump)
	nextPC := m.Mux(taken, pc4, target)
	b.drive(pcD, nextPC)
	b.drive(pcEn, rtl.Bus{exec})

	// Terminating condition: a taken jump to the current instruction
	// ("bkend: jal x0, bkend").
	selfJump := m.AndBit(taken, m.Eq(target, pc))
	hit := m.AndBit(exec, selfJump)
	b.drive(haltD, rtl.Bus{m.Hi()})
	b.drive(haltEn, rtl.Bus{hit})

	// --- Data memory ---
	memIdx := addRes[2 : 2+8] // 256 words
	ramWen := m.AndBit(exec, isStore)
	rdata := m.RAM("dmem", memIdx, 32, RAMWords, b.dataInit(img), ramWen, memIdx, rs2d)

	// --- Write-back ---
	link := m.ZeroExtend(pc4, 32)
	wb := m.Mux(isLoad, aluRes, rdata)
	wb = m.Mux(isLUI, wb, immU)
	wb = m.Mux(jump, wb, link)
	b.drive(wbData, wb)

	writesReg := m.OrBit(isALU, m.OrBit(isALUImm, m.OrBit(isLoad, m.OrBit(isLUI, jump))))
	rdNonZero := m.NonZero(rd)
	b.drive(wbEn, rtl.Bus{m.AndBit(exec, m.AndBit(writesReg, rdNonZero))})

	// Expose observability outputs so the bespoke flow preserves the
	// architecturally visible behaviour.
	m.Output("pc_out", pc)
	m.Output("wb_out", wbData)
}

func (b *builder) dataInit(img *isa.Image) []logic.Vec {
	return img.DataVec(RAMWords, 32)
}
