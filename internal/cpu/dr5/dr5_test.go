package dr5

import (
	"testing"

	"symsim/internal/cpu/cputest"
	"symsim/internal/isa/rv32"
	"symsim/internal/vvp"
)

// run assembles the program, builds the core and runs it concretely to the
// terminating condition.
func run(t *testing.T, build func(a *rv32.Asm)) *vvp.Simulator {
	t.Helper()
	a := rv32.NewAsm()
	build(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cputest.Run(p, 200000)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// memWord asserts data-memory word index holds want.
func memWord(t *testing.T, sim *vvp.Simulator, index int, want uint32) {
	t.Helper()
	got, err := cputest.MemUint(sim, "dmem", index)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(got) != want {
		t.Errorf("dmem[%d] = %#x, want %#x", index, got, want)
	}
}

func TestHaltOnly(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) { a.Halt() })
	if sim.Cycles() > 20 {
		t.Errorf("halt took %d cycles", sim.Cycles())
	}
}

func TestArithToMemory(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.T0, 40)
		a.LI(rv32.T1, 2)
		a.ADD(rv32.T2, rv32.T0, rv32.T1) // 42
		a.SUB(rv32.A0, rv32.T0, rv32.T1) // 38
		a.AND(rv32.A1, rv32.T0, rv32.T1) // 0
		a.OR(rv32.A2, rv32.T0, rv32.T1)  // 42
		a.XOR(rv32.A3, rv32.T0, rv32.T1) // 42
		a.SW(rv32.T2, rv32.X0, 0)
		a.SW(rv32.A0, rv32.X0, 4)
		a.SW(rv32.A1, rv32.X0, 8)
		a.SW(rv32.A2, rv32.X0, 12)
		a.SW(rv32.A3, rv32.X0, 16)
		a.Halt()
	})
	memWord(t, sim, 0, 42)
	memWord(t, sim, 1, 38)
	memWord(t, sim, 2, 0)
	memWord(t, sim, 3, 42)
	memWord(t, sim, 4, 42)
}

func TestX0IsHardwiredZero(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.X0, 99) // must be discarded
		a.SW(rv32.X0, rv32.X0, 0)
		a.Halt()
	})
	memWord(t, sim, 0, 0)
}

func TestImmediatesAndLUI(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.T0, 0x12345678)
		a.SW(rv32.T0, rv32.X0, 0)
		a.LI(rv32.T1, -1)
		a.SW(rv32.T1, rv32.X0, 4)
		a.ADDI(rv32.T2, rv32.T1, 1) // 0
		a.SW(rv32.T2, rv32.X0, 8)
		a.ANDI(rv32.A0, rv32.T0, 0xFF) // 0x78
		a.SW(rv32.A0, rv32.X0, 12)
		a.ORI(rv32.A1, rv32.X0, 0x55)
		a.SW(rv32.A1, rv32.X0, 16)
		a.XORI(rv32.A2, rv32.A1, 0x7F) // 0x2A
		a.SW(rv32.A2, rv32.X0, 20)
		a.Halt()
	})
	memWord(t, sim, 0, 0x12345678)
	memWord(t, sim, 1, 0xFFFFFFFF)
	memWord(t, sim, 2, 0)
	memWord(t, sim, 3, 0x78)
	memWord(t, sim, 4, 0x55)
	memWord(t, sim, 5, 0x2A)
}

func TestShifts(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.T0, 1)
		a.SLLI(rv32.T1, rv32.T0, 5) // 32
		a.SW(rv32.T1, rv32.X0, 0)
		a.LI(rv32.T2, -64)
		a.SRAI(rv32.A0, rv32.T2, 3) // -8
		a.SW(rv32.A0, rv32.X0, 4)
		a.SRLI(rv32.A1, rv32.T2, 28) // 0xF
		a.SW(rv32.A1, rv32.X0, 8)
		a.LI(rv32.A2, 2)
		a.SLL(rv32.A3, rv32.T1, rv32.A2) // 128
		a.SW(rv32.A3, rv32.X0, 12)
		a.SRL(rv32.A4, rv32.T1, rv32.A2) // 8
		a.SW(rv32.A4, rv32.X0, 16)
		a.SRA(rv32.A5, rv32.T2, rv32.A2) // -16
		a.SW(rv32.A5, rv32.X0, 20)
		a.Halt()
	})
	memWord(t, sim, 0, 32)
	memWord(t, sim, 1, 0xFFFFFFF8)
	memWord(t, sim, 2, 0xF)
	memWord(t, sim, 3, 128)
	memWord(t, sim, 4, 8)
	memWord(t, sim, 5, 0xFFFFFFF0)
}

func TestComparisons(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.T0, -5)
		a.LI(rv32.T1, 3)
		a.SLT(rv32.A0, rv32.T0, rv32.T1)  // 1 (signed)
		a.SLTU(rv32.A1, rv32.T0, rv32.T1) // 0 (unsigned: big)
		a.SLTI(rv32.A2, rv32.T1, 10)      // 1
		a.SLTIU(rv32.A3, rv32.T1, 2)      // 0
		a.SW(rv32.A0, rv32.X0, 0)
		a.SW(rv32.A1, rv32.X0, 4)
		a.SW(rv32.A2, rv32.X0, 8)
		a.SW(rv32.A3, rv32.X0, 12)
		a.Halt()
	})
	memWord(t, sim, 0, 1)
	memWord(t, sim, 1, 0)
	memWord(t, sim, 2, 1)
	memWord(t, sim, 3, 0)
}

func TestLoadStoreRoundTrip(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.T0, 0xDEAD)
		a.LI(rv32.T1, 32) // base byte address
		a.SW(rv32.T0, rv32.T1, 4)
		a.LW(rv32.T2, rv32.T1, 4)
		a.ADDI(rv32.T2, rv32.T2, 1)
		a.SW(rv32.T2, rv32.X0, 0)
		a.Halt()
	})
	memWord(t, sim, 0, 0xDEAE)
	memWord(t, sim, 9, 0xDEAD)
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.T0, 10)
		a.LI(rv32.T1, 0)
		a.Label("loop")
		a.ADD(rv32.T1, rv32.T1, rv32.T0)
		a.ADDI(rv32.T0, rv32.T0, -1)
		a.BNE(rv32.T0, rv32.X0, "loop")
		a.SW(rv32.T1, rv32.X0, 0)
		a.Halt()
	})
	memWord(t, sim, 0, 55)
}

func TestBranchVariants(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.T0, -1)
		a.LI(rv32.T1, 1)
		a.LI(rv32.A0, 0)

		a.BLT(rv32.T0, rv32.T1, "blt_ok") // taken (signed)
		a.Halt()
		a.Label("blt_ok")
		a.ORI(rv32.A0, rv32.A0, 1)

		a.BLTU(rv32.T1, rv32.T0, "bltu_ok") // taken (unsigned: 1 < 0xFFFF_FFFF)
		a.Halt()
		a.Label("bltu_ok")
		a.ORI(rv32.A0, rv32.A0, 2)

		a.BGE(rv32.T1, rv32.T0, "bge_ok") // taken
		a.Halt()
		a.Label("bge_ok")
		a.ORI(rv32.A0, rv32.A0, 4)

		a.BGEU(rv32.T0, rv32.T1, "bgeu_ok") // taken
		a.Halt()
		a.Label("bgeu_ok")
		a.ORI(rv32.A0, rv32.A0, 8)

		a.BEQ(rv32.T0, rv32.T1, "wrong") // not taken
		a.ORI(rv32.A0, rv32.A0, 16)
		a.Label("wrong")
		a.SW(rv32.A0, rv32.X0, 0)
		a.Halt()
	})
	memWord(t, sim, 0, 31)
}

func TestJALAndJALR(t *testing.T) {
	sim := run(t, func(a *rv32.Asm) {
		a.LI(rv32.A0, 5)
		a.JAL(rv32.RA, "double") // call
		a.SW(rv32.A0, rv32.X0, 0)
		a.Halt()
		a.Label("double")
		a.ADD(rv32.A0, rv32.A0, rv32.A0)
		a.JALR(rv32.X0, rv32.RA, 0) // return
	})
	memWord(t, sim, 0, 10)
}

func TestGateCountPlausible(t *testing.T) {
	a := rv32.NewAsm()
	a.Halt()
	p, err := Build(a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	st := p.Design.Stats()
	// The paper's dr5 netlist has 7578 gates; ours must be the same order
	// of magnitude for the Table 2/3 comparisons to be meaningful.
	if st.Gates < 2000 || st.Gates > 30000 {
		t.Errorf("dr5 gate count %d implausible (%s)", st.Gates, st)
	}
	if st.Sequential < 512 {
		t.Errorf("register file missing? only %d DFFs", st.Sequential)
	}
	t.Logf("dr5: %s", st)
}

func TestMonitorSpecNets(t *testing.T) {
	a := rv32.NewAsm()
	a.Halt()
	p, err := Build(a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Monitor.Watch) != WatchBits {
		t.Errorf("watch width %d, want %d", len(p.Monitor.Watch), WatchBits)
	}
	if len(p.Spec.PC) != PCBits {
		t.Errorf("PC width %d, want %d", len(p.Spec.PC), PCBits)
	}
}
