// Package bm32 builds the gate-level 32-bit MIPS processor of the paper's
// evaluation ("bm32", a custom implementation of the textbook MIPS32 [24]
// with a hardware multiplier). The core is a two-state multicycle machine:
// FETCH latches the instruction, EXEC performs the operation, writes back
// and updates the PC. Conditional branches (BEQ/BNE) resolve from the
// subtraction of the two operand registers; the low 16 bits of that
// difference are the monitored control-flow signals, the architectural
// property behind bm32's large simulation path counts in paper §5.0.3.
package bm32

import (
	"fmt"

	"symsim/internal/core"
	"symsim/internal/isa"
	"symsim/internal/netlist"
	"symsim/internal/rtl"
	"symsim/internal/vvp"
)

// Geometry of the core.
const (
	// ROMWords is the program memory capacity (32-bit words).
	ROMWords = 1024
	// RAMWords is the data memory capacity (32-bit words).
	RAMWords = 256
	// PCBits is the program counter width (byte addresses).
	PCBits = 16
	// WatchBits is the width of the monitored compare-result bus.
	WatchBits = 16
	// MulBits is the hardware multiplier operand width: a full 32x32
	// array producing the 64-bit {HI,LO} pair, as in MIPS32. The array
	// dominates bm32's gate count, which is why the paper's mult
	// benchmark exercises more of bm32 than any other benchmark.
	MulBits = 32
)

// Build elaborates the bm32 core with the given program preloaded.
func Build(img *isa.Image) (*core.Platform, error) {
	if len(img.ROM) > ROMWords {
		return nil, fmt.Errorf("bm32: program of %d words exceeds ROM (%d)", len(img.ROM), ROMWords)
	}
	m := rtl.NewModule("bm32")
	b := &builder{Module: m}
	b.elaborate(img)
	if err := m.N.Freeze(); err != nil {
		return nil, err
	}
	spec, err := vvp.SpecFor(m.N, "pc")
	if err != nil {
		return nil, err
	}
	mon, err := monitorSpec(m.N)
	if err != nil {
		return nil, err
	}
	return &core.Platform{
		Name:        "bm32",
		Design:      m.N,
		Spec:        spec,
		Monitor:     mon,
		HalfPeriod:  5,
		ResetCycles: 2,
	}, nil
}

func monitorSpec(n *netlist.Netlist) (vvp.MonitorXSpec, error) {
	var mon vvp.MonitorXSpec
	var ok bool
	if mon.BranchActive, ok = n.NetByName("branch_active"); !ok {
		return mon, fmt.Errorf("bm32: branch_active net missing")
	}
	if mon.Cond, ok = n.NetByName("branch_cond"); !ok {
		return mon, fmt.Errorf("bm32: branch_cond net missing")
	}
	if mon.Finish, ok = n.NetByName("halted"); !ok {
		return mon, fmt.Errorf("bm32: halted net missing")
	}
	for i := 0; i < WatchBits; i++ {
		id, ok := n.NetByName(fmt.Sprintf("cmp_res[%d]", i))
		if !ok {
			return mon, fmt.Errorf("bm32: cmp_res[%d] net missing", i)
		}
		mon.Watch = append(mon.Watch, id)
	}
	return mon, nil
}

type builder struct {
	*rtl.Module
}

func (b *builder) wire(name string, width int) rtl.Bus {
	out := make(rtl.Bus, width)
	for i := range out {
		if width == 1 {
			out[i] = b.N.AddNet(name)
		} else {
			out[i] = b.N.AddNet(fmt.Sprintf("%s[%d]", name, i))
		}
	}
	return out
}

func (b *builder) drive(dst, src rtl.Bus) {
	if len(dst) != len(src) {
		panic("bm32: drive width mismatch")
	}
	for i := range dst {
		b.N.AddGate(netlist.KindBuf, dst[i], src[i])
	}
}

func (b *builder) elaborate(img *isa.Image) {
	m := b.Module

	// --- Architectural state ---
	pcD := b.wire("pc_d", PCBits)
	pcEn := b.wire("pc_en", 1)
	pc := m.Reg("pc", pcD, pcEn[0], 0)

	irD := b.wire("ir_d", 32)
	irEn := b.wire("ir_en", 1)
	ir := m.Reg("ir", irD, irEn[0], 0)

	phD := b.wire("ph_d", 1)
	ph := m.Reg("ph", phD, m.Hi(), 0)
	exec := ph[0]
	fetch := m.NotBit(exec)
	b.drive(phD, rtl.Bus{m.NotBit(ph[0])})

	haltD := b.wire("halt_d", 1)
	haltEn := b.wire("halt_en", 1)
	halted := m.Reg("halted_q", haltD, haltEn[0], 0)
	m.Output("halted", m.Named("halted", halted))

	// --- Program memory ---
	insn := m.ROM("prom", pc[2:2+10], 32, ROMWords, img.ROM)
	b.drive(irD, insn)
	b.drive(irEn, rtl.Bus{fetch})

	// --- Decode ---
	op := ir[26:32]
	rs := ir[21:26]
	rt := ir[16:21]
	rdF := ir[11:16]
	shamt := ir[6:11]
	funct := ir[0:6]
	imm16 := ir[0:16]

	isR := m.Zero(op)
	fn := func(code uint64) netlist.NetID { return m.AndBit(isR, m.EqConst(funct, code)) }
	isSLL := fn(0x00)
	isSRL := fn(0x02)
	isSRA := fn(0x03)
	isSLLV := fn(0x04)
	isSRLV := fn(0x06)
	isSRAV := fn(0x07)
	isJR := fn(0x08)
	isMFHI := fn(0x10)
	isMFLO := fn(0x12)
	isMULT := m.OrBit(fn(0x18), fn(0x19))
	isADD := m.OrBit(fn(0x20), fn(0x21))
	isSUB := m.OrBit(fn(0x22), fn(0x23))
	isANDr := fn(0x24)
	isORr := fn(0x25)
	isXORr := fn(0x26)
	isNOR := fn(0x27)
	isSLT := fn(0x2A)
	isSLTU := fn(0x2B)

	opIs := func(code uint64) netlist.NetID { return m.EqConst(op, code) }
	isJ := opIs(0x02)
	isJAL := opIs(0x03)
	isBEQ := opIs(0x04)
	isBNE := opIs(0x05)
	isADDI := m.OrBit(opIs(0x08), opIs(0x09))
	isSLTI := opIs(0x0A)
	isSLTIU := opIs(0x0B)
	isANDI := opIs(0x0C)
	isORI := opIs(0x0D)
	isXORI := opIs(0x0E)
	isLUI := opIs(0x0F)
	isLW := opIs(0x23)
	isSW := opIs(0x2B)

	isBranch := m.OrBit(isBEQ, isBNE)
	isShiftImm := m.OrBit(isSLL, m.OrBit(isSRL, isSRA))
	isShiftReg := m.OrBit(isSLLV, m.OrBit(isSRLV, isSRAV))
	zeroExtImm := m.OrBit(isANDI, m.OrBit(isORI, isXORI))

	immSE := m.SignExtend(imm16, 32)
	immZE := m.ZeroExtend(imm16, 32)
	imm := m.Mux(zeroExtImm, immSE, immZE)

	// --- Register file (32 x 32) ---
	wbData := b.wire("wb_data", 32)
	wbEn := b.wire("wb_en", 1)
	wbAddr := b.wire("wb_addr", 5)
	ports := m.RegFile("rf", 32, 32, wbEn[0], wbAddr, wbData, []rtl.Bus{rs, rt})
	rsd, rtd := ports[0], ports[1]

	// --- ALU ---
	useImm := m.OrBit(isADDI, m.OrBit(isSLTI, m.OrBit(isSLTIU,
		m.OrBit(zeroExtImm, m.OrBit(isLW, isSW)))))
	bOp := m.Mux(useImm, rtd, imm)
	subSel := isSUB
	addB := m.Mux(subSel, bOp, m.Not(bOp))
	addRes, _ := m.Add(rsd, addB, subSel)

	sh := m.Mux(isShiftReg, shamt, rsd[0:5])
	sll := m.ShiftLeft(rtd, sh)
	srl := m.ShiftRight(rtd, sh, false)
	sra := m.ShiftRight(rtd, sh, true)

	ltS := m.LtS(rsd, bOp)
	ltU := m.LtU(rsd, bOp)

	// --- Hardware multiplier (32x32 -> 64) with HI/LO registers ---
	prod := m.MulU(rsd[0:MulBits], rtd[0:MulBits])
	loD := b.wire("lo_d", 32)
	loEn := b.wire("lo_en", 1)
	lo := m.Reg("lo", loD, loEn[0], 0)
	hiD := b.wire("hi_d", 32)
	hiEn := b.wire("hi_en", 1)
	hi := m.Reg("hi", hiD, hiEn[0], 0)
	b.drive(loD, prod[0:32])
	b.drive(hiD, prod[32:64])
	mulGo := m.AndBit(exec, isMULT)
	b.drive(loEn, rtl.Bus{mulGo})
	b.drive(hiEn, rtl.Bus{mulGo})

	// --- Result selection ---
	res := addRes
	sel := func(cond netlist.NetID, val rtl.Bus) { res = m.Mux(cond, res, val) }
	sel(m.OrBit(isSLL, isSLLV), sll)
	sel(m.OrBit(isSRL, isSRLV), srl)
	sel(m.OrBit(isSRA, isSRAV), sra)
	sel(m.OrBit(isSLT, isSLTI), m.ZeroExtend(rtl.Bus{ltS}, 32))
	sel(m.OrBit(isSLTU, isSLTIU), m.ZeroExtend(rtl.Bus{ltU}, 32))
	sel(isANDr, m.And(rsd, bOp))
	sel(m.OrBit(isORr, isORI), m.Or(rsd, bOp))
	sel(isANDI, m.And(rsd, bOp))
	sel(m.OrBit(isXORr, isXORI), m.Xor(rsd, bOp))
	sel(isNOR, m.Not(m.Or(rsd, bOp)))
	sel(isLUI, rtl.Cat(m.Const(16, 0), imm16))
	sel(isMFLO, lo)
	sel(isMFHI, hi)

	// --- Branch resolution: subtraction of the operand registers; the
	// low 16 bits of the difference are monitored (paper §5.0.3). ---
	diff, _ := m.Sub(rsd, rtd)
	m.Named("cmp_res", diff[0:WatchBits])
	eq := m.Eq(rsd, rtd)
	condRaw := m.MuxBit(isBNE, eq, m.NotBit(eq))
	cond := m.Named("branch_cond", rtl.Bus{condRaw})[0]
	m.Named("branch_active", rtl.Bus{m.AndBit(exec, isBranch)})

	// --- Next PC ---
	pc4, _ := m.Add(pc, m.Const(PCBits, 4), m.Lo())
	// Branch offset in bytes, modulo the 16-bit PC space: (imm << 2) mod
	// 2^16, which preserves negative offsets without explicit extension.
	brOff := rtl.Cat(m.Const(2, 0), imm16[0:PCBits-2])
	brTarget, _ := m.Add(pc4, brOff, m.Lo())
	jTarget := rtl.Cat(m.Const(2, 0), ir[0:PCBits-2])
	jump := m.OrBit(isJ, isJAL)
	target := m.Mux(jump, rsd[0:PCBits], jTarget) // JR uses rs, J/JAL the field
	target = m.Mux(isBranch, target, brTarget)

	takenJump := m.OrBit(jump, isJR)
	taken := m.OrBit(m.AndBit(isBranch, cond), takenJump)
	nextPC := m.Mux(taken, pc4, target)
	b.drive(pcD, nextPC)
	b.drive(pcEn, rtl.Bus{exec})

	selfJump := m.AndBit(taken, m.Eq(target, pc))
	b.drive(haltD, rtl.Bus{m.Hi()})
	b.drive(haltEn, rtl.Bus{m.AndBit(exec, selfJump)})

	// --- Data memory ---
	ramWen := m.AndBit(exec, isSW)
	memIdx := addRes[2 : 2+8]
	rdata := m.RAM("dmem", memIdx, 32, RAMWords, img.DataVec(RAMWords, 32), ramWen, memIdx, rtd)

	// --- Write-back ---
	link := m.ZeroExtend(pc4, 32)
	wb := m.Mux(isLW, res, rdata)
	wb = m.Mux(isJAL, wb, link)
	b.drive(wbData, wb)

	// Destination register: rd for R-type, rt for I-type, $ra (31) for JAL.
	dst := m.Mux(isR, rt, rdF)
	dst = m.Mux(isJAL, dst, m.Const(5, 31))
	b.drive(wbAddr, dst)

	writesReg := m.OrBit(isADD, m.OrBit(isSUB, m.OrBit(isANDr, m.OrBit(isORr,
		m.OrBit(isXORr, m.OrBit(isNOR, m.OrBit(isSLT, m.OrBit(isSLTU,
			m.OrBit(isShiftImm, m.OrBit(isShiftReg, m.OrBit(isMFLO, isMFHI)))))))))))
	writesReg = m.OrBit(writesReg, m.OrBit(isADDI, m.OrBit(isSLTI, m.OrBit(isSLTIU,
		m.OrBit(zeroExtImm, m.OrBit(isLUI, m.OrBit(isLW, isJAL)))))))
	dstNonZero := m.NonZero(dst)
	b.drive(wbEn, rtl.Bus{m.AndBit(exec, m.AndBit(writesReg, dstNonZero))})

	m.Output("pc_out", pc)
	m.Output("wb_out", wbData)
}
