package bm32

import (
	"testing"

	"symsim/internal/cpu/cputest"
	"symsim/internal/isa/mips"
	"symsim/internal/vvp"
)

func run(t *testing.T, build func(a *mips.Asm)) *vvp.Simulator {
	t.Helper()
	a := mips.NewAsm()
	build(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cputest.Run(p, 200000)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func memWord(t *testing.T, sim *vvp.Simulator, index int, want uint32) {
	t.Helper()
	got, err := cputest.MemUint(sim, "dmem", index)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(got) != want {
		t.Errorf("dmem[%d] = %#x, want %#x", index, got, want)
	}
}

func TestHaltOnly(t *testing.T) {
	sim := run(t, func(a *mips.Asm) { a.Halt() })
	if sim.Cycles() > 20 {
		t.Errorf("halt took %d cycles", sim.Cycles())
	}
}

func TestRTypeALU(t *testing.T) {
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.T0, 40)
		a.LI(mips.T1, 2)
		a.ADDU(mips.T2, mips.T0, mips.T1)
		a.SW(mips.T2, mips.ZERO, 0) // 42
		a.SUBU(mips.T3, mips.T0, mips.T1)
		a.SW(mips.T3, mips.ZERO, 4) // 38
		a.AND(mips.T4, mips.T0, mips.T1)
		a.SW(mips.T4, mips.ZERO, 8) // 0
		a.OR(mips.T5, mips.T0, mips.T1)
		a.SW(mips.T5, mips.ZERO, 12) // 42
		a.XOR(mips.T6, mips.T0, mips.T1)
		a.SW(mips.T6, mips.ZERO, 16) // 42
		a.NOR(mips.T7, mips.T0, mips.T1)
		a.SW(mips.T7, mips.ZERO, 20) // ^42
		a.Halt()
	})
	memWord(t, sim, 0, 42)
	memWord(t, sim, 1, 38)
	memWord(t, sim, 2, 0)
	memWord(t, sim, 3, 42)
	memWord(t, sim, 4, 42)
	memWord(t, sim, 5, ^uint32(42))
}

func TestImmediatesAndLUI(t *testing.T) {
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.T0, 0x12345678)
		a.SW(mips.T0, mips.ZERO, 0)
		a.ADDIU(mips.T1, mips.ZERO, -1)
		a.SW(mips.T1, mips.ZERO, 4)
		a.ANDI(mips.T2, mips.T0, 0xFF)
		a.SW(mips.T2, mips.ZERO, 8) // 0x78
		a.ORI(mips.T3, mips.ZERO, 0x8000)
		a.SW(mips.T3, mips.ZERO, 12) // zero-extended 0x8000
		a.XORI(mips.T4, mips.T3, 0x8000)
		a.SW(mips.T4, mips.ZERO, 16) // 0
		a.Halt()
	})
	memWord(t, sim, 0, 0x12345678)
	memWord(t, sim, 1, 0xFFFFFFFF)
	memWord(t, sim, 2, 0x78)
	memWord(t, sim, 3, 0x8000)
	memWord(t, sim, 4, 0)
}

func TestShifts(t *testing.T) {
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.T0, 1)
		a.SLL(mips.T1, mips.T0, 5)
		a.SW(mips.T1, mips.ZERO, 0) // 32
		a.LI(mips.T2, -64)
		a.SRA(mips.T3, mips.T2, 3)
		a.SW(mips.T3, mips.ZERO, 4) // -8
		a.SRL(mips.T4, mips.T2, 28)
		a.SW(mips.T4, mips.ZERO, 8) // 0xF
		a.LI(mips.T5, 2)
		a.SLLV(mips.T6, mips.T1, mips.T5)
		a.SW(mips.T6, mips.ZERO, 12) // 128
		a.SRLV(mips.T7, mips.T1, mips.T5)
		a.SW(mips.T7, mips.ZERO, 16) // 8
		a.SRAV(mips.S0, mips.T2, mips.T5)
		a.SW(mips.S0, mips.ZERO, 20) // -16
		a.Halt()
	})
	memWord(t, sim, 0, 32)
	memWord(t, sim, 1, 0xFFFFFFF8)
	memWord(t, sim, 2, 0xF)
	memWord(t, sim, 3, 128)
	memWord(t, sim, 4, 8)
	memWord(t, sim, 5, 0xFFFFFFF0)
}

func TestSetLessThan(t *testing.T) {
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.T0, -5)
		a.LI(mips.T1, 3)
		a.SLT(mips.T2, mips.T0, mips.T1)
		a.SW(mips.T2, mips.ZERO, 0) // 1
		a.SLTU(mips.T3, mips.T0, mips.T1)
		a.SW(mips.T3, mips.ZERO, 4) // 0
		a.SLTI(mips.T4, mips.T1, 10)
		a.SW(mips.T4, mips.ZERO, 8) // 1
		a.SLTIU(mips.T5, mips.T1, 2)
		a.SW(mips.T5, mips.ZERO, 12) // 0
		a.Halt()
	})
	memWord(t, sim, 0, 1)
	memWord(t, sim, 1, 0)
	memWord(t, sim, 2, 1)
	memWord(t, sim, 3, 0)
}

func TestHardwareMultiplier(t *testing.T) {
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.T0, 1234)
		a.LI(mips.T1, 567)
		a.MULTU(mips.T0, mips.T1)
		a.MFLO(mips.T2)
		a.SW(mips.T2, mips.ZERO, 0)
		a.MFHI(mips.T3)
		a.SW(mips.T3, mips.ZERO, 4)
		a.Halt()
	})
	memWord(t, sim, 0, 1234*567)
	memWord(t, sim, 1, 0)
}

func TestBranchLoopSum(t *testing.T) {
	// MIPS compare-then-branch idiom: SLT/SUB result in a register,
	// BNE against $zero (paper §5.0.3).
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.T0, 10)
		a.LI(mips.T1, 0)
		a.Label("loop")
		a.ADDU(mips.T1, mips.T1, mips.T0)
		a.ADDIU(mips.T0, mips.T0, -1)
		a.BNE(mips.T0, mips.ZERO, "loop")
		a.SW(mips.T1, mips.ZERO, 0)
		a.Halt()
	})
	memWord(t, sim, 0, 55)
}

func TestBEQTakenAndNotTaken(t *testing.T) {
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.T0, 5)
		a.LI(mips.T1, 5)
		a.BEQ(mips.T0, mips.T1, "eq")
		a.Halt() // must not execute
		a.Label("eq")
		a.LI(mips.T2, 7)
		a.BEQ(mips.T0, mips.T2, "wrong")
		a.LI(mips.T3, 1)
		a.SW(mips.T3, mips.ZERO, 0)
		a.Label("wrong")
		a.Halt()
	})
	memWord(t, sim, 0, 1)
}

func TestJALAndJR(t *testing.T) {
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.A0, 5)
		a.JAL("double")
		a.SW(mips.A0, mips.ZERO, 0)
		a.Halt()
		a.Label("double")
		a.ADDU(mips.A0, mips.A0, mips.A0)
		a.JR(mips.RA)
	})
	memWord(t, sim, 0, 10)
}

func TestLoadStore(t *testing.T) {
	sim := run(t, func(a *mips.Asm) {
		a.LI(mips.T0, 0xCAFE)
		a.LI(mips.T1, 64)
		a.SW(mips.T0, mips.T1, 8)
		a.LW(mips.T2, mips.T1, 8)
		a.ADDIU(mips.T2, mips.T2, 2)
		a.SW(mips.T2, mips.ZERO, 0)
		a.Halt()
	})
	memWord(t, sim, 0, 0xCB00)
	memWord(t, sim, 18, 0xCAFE)
}

func TestGateCountPlausible(t *testing.T) {
	a := mips.NewAsm()
	a.Halt()
	p, err := Build(a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	st := p.Design.Stats()
	// Paper bm32: 16795 gates; same order of magnitude required, and it
	// must be the largest of the three designs.
	if st.Gates < 4000 || st.Gates > 60000 {
		t.Errorf("bm32 gate count %d implausible (%s)", st.Gates, st)
	}
	if st.Sequential < 1024 {
		t.Errorf("32x32 register file missing? only %d DFFs", st.Sequential)
	}
	t.Logf("bm32: %s", st)
}
