package bespoke_test

import (
	"testing"

	"symsim/internal/bespoke"
	"symsim/internal/core"
	"symsim/internal/cpu/bm32"
	"symsim/internal/cpu/dr5"
	"symsim/internal/cpu/omsp430"
	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/prog"
)

// flow runs the full bespoke pipeline for one benchmark/design pair and
// validates it with the given concrete inputs.
func flow(t *testing.T, bench string, target prog.ISA, inputs map[int]uint64, maxCycles uint64) (*core.Result, *bespoke.Result, *bespoke.ValidationReport) {
	t.Helper()
	img := prog.MustBuild(bench, target)
	var p *core.Platform
	var err error
	width := 32
	switch target {
	case prog.ISARV32:
		p, err = dr5.Build(img)
	case prog.ISAMips:
		p, err = bm32.Build(img)
	case prog.ISAMsp430:
		p, err = omsp430.Build(img)
		width = 16
	}
	if err != nil {
		t.Fatal(err)
	}
	sym, err := core.Analyze(p, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := bespoke.Generate(sym)
	if err != nil {
		t.Fatal(err)
	}
	var mi []bespoke.MemInit
	for w, v := range inputs {
		mi = append(mi, bespoke.MemInit{Mem: "dmem", Word: w, Val: logic.NewVecUint64(width, v)})
	}
	rep, err := bespoke.Validate(sym, bsp, p, mi, maxCycles)
	if err != nil {
		t.Fatalf("validate %s/%s: %v", bench, target, err)
	}
	return sym, bsp, rep
}

func TestBespokeDivAllDesigns(t *testing.T) {
	for _, target := range []prog.ISA{prog.ISARV32, prog.ISAMips, prog.ISAMsp430} {
		sym, bsp, rep := flow(t, "Div", target, map[int]uint64{0: 1000, 1: 7}, 300000)
		if bsp.BespokeGates >= bsp.OriginalGates {
			t.Errorf("%s: bespoke %d gates >= original %d", target, bsp.BespokeGates, bsp.OriginalGates)
		}
		if bsp.ReductionPct() <= 0 {
			t.Errorf("%s: reduction %.1f%%", target, bsp.ReductionPct())
		}
		if rep.SubsetViolations != 0 {
			t.Errorf("%s: %d subset violations", target, rep.SubsetViolations)
		}
		if rep.OutputsCompared == 0 || rep.MemWordsCompared == 0 {
			t.Errorf("%s: validation compared nothing: %+v", target, rep)
		}
		_ = sym
		t.Logf("%s: %d -> %d physical gates (exercisable %d, reduction %.1f%%), %d output samples equal",
			target, bsp.OriginalGates, bsp.BespokeGates, bsp.ExercisableGates, bsp.ReductionPct(), rep.OutputsCompared)
	}
}

func TestBespokeTea8SinglePathStillValid(t *testing.T) {
	_, bsp, rep := flow(t, "tea8", prog.ISAMsp430, map[int]uint64{0: 0x1234, 1: 0xBEEF}, 300000)
	if bsp.ReductionPct() < 40 {
		t.Errorf("tea8/msp430 reduction %.1f%%, want the peripheral-dominated cut", bsp.ReductionPct())
	}
	if rep.SubsetViolations != 0 {
		t.Errorf("subset violations: %d", rep.SubsetViolations)
	}
}

// The bespoke netlist of the mult benchmark on openMSP430 must retain the
// hardware multiplier (it is exercised), while tea8's must not.
func TestBespokeKeepsWhatIsUsed(t *testing.T) {
	_, bspMult, _ := flow(t, "mult", prog.ISAMsp430, map[int]uint64{0: 1234, 1: 567}, 300000)
	_, bspTea, _ := flow(t, "tea8", prog.ISAMsp430, map[int]uint64{0: 1, 1: 2}, 300000)
	if bspMult.ExercisableGates <= bspTea.ExercisableGates {
		t.Errorf("mult exercisable %d should exceed tea8 %d (multiplier in use)",
			bspMult.ExercisableGates, bspTea.ExercisableGates)
	}
}

// Physical gate count after re-synthesis must not exceed the exercisable
// count by much (folding can only shrink the surviving logic; buffers from
// tie-off constants account for a tiny overhead).
func TestBespokePhysicalVsExercisable(t *testing.T) {
	_, bsp, _ := flow(t, "tHold", prog.ISARV32, map[int]uint64{0: 1, 1: 200, 2: 3, 3: 4, 4: 5, 5: 6, 6: 7, 7: 300}, 300000)
	if bsp.BespokeGates > bsp.ExercisableGates+8 {
		t.Errorf("bespoke physical gates %d exceed exercisable %d", bsp.BespokeGates, bsp.ExercisableGates)
	}
}

// Tampering detection: tying off a gate that IS exercised must make the
// validation fail — the §5.0.1 equivalence check has teeth.
func TestValidateDetectsWrongPruning(t *testing.T) {
	img := prog.MustBuild("tHold", prog.ISARV32)
	p, err := dr5.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := core.Analyze(p, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the tie list: tie the most-connected exercisable gate low.
	ties := sym.TieOffs()
	victim := -1
	for gi, ex := range sym.ExercisableGates {
		if ex && len(p.Design.Fanout(p.Design.Gates[gi].Out)) > 3 {
			victim = gi
			break
		}
	}
	if victim < 0 {
		t.Fatal("no victim gate found")
	}
	ties = append(ties, netlist.TieOff{Gate: netlist.GateID(victim), Value: logic.Lo})
	rr, err := netlist.Resynthesize(p.Design, ties)
	if err != nil {
		t.Fatal(err)
	}
	bad := &bespoke.Result{
		Original: p.Design, Bespoke: rr.Netlist,
		ExercisableGates: sym.ExercisableCount,
		OriginalGates:    len(p.Design.Gates),
		BespokeGates:     len(rr.Netlist.Gates),
		Resynth:          rr,
	}
	inputs := []bespoke.MemInit{}
	for i, v := range []uint64{1, 200, 3, 400, 5, 600, 7, 800} {
		inputs = append(inputs, bespoke.MemInit{Mem: "dmem", Word: i, Val: logic.NewVecUint64(32, v)})
	}
	// A corrupted core may never reach its terminating condition, so keep
	// the cycle budget small (the correct run needs ~200 cycles).
	if _, err := bespoke.Validate(sym, bad, p, inputs, 4096); err == nil {
		t.Fatal("validation accepted a functionally wrong bespoke netlist")
	}
}
