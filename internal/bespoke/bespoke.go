// Package bespoke implements automatic generation of application-specific
// bespoke processors from symbolic co-analysis results (paper §3, following
// [4]): gates the analysis proves unexercisable are pruned away, their
// fanout is tied to the constant value observed during symbolic simulation,
// and the netlist is re-synthesized (constant propagation + dead-logic
// sweep). The package also implements the paper's §5.0.1 validation:
// simulating fixed known inputs on both the original and the bespoke
// netlist and checking that outputs agree, and that the concretely
// exercised gate set is a subset of the symbolically exercisable set.
package bespoke

import (
	"fmt"

	"symsim/internal/core"
	"symsim/internal/lint"
	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/vvp"
)

// Result describes one bespoke generation.
type Result struct {
	// Original is the input design, Bespoke the pruned re-synthesized one.
	Original, Bespoke *netlist.Netlist
	// ExercisableGates is the paper's Table 3 "GateCount" metric: the
	// number of gates the analysis could not prove unexercisable.
	ExercisableGates int
	// OriginalGates and BespokeGates are primitive-cell counts.
	OriginalGates, BespokeGates int
	// Resynth carries the tie/fold/sweep accounting.
	Resynth *netlist.ResynthResult
}

// ReductionPct is the paper's "% reduction" metric, computed — as in the
// paper — from the exercisable-gate dichotomy.
func (r *Result) ReductionPct() float64 {
	if r.OriginalGates == 0 {
		return 0
	}
	return 100 * float64(r.OriginalGates-r.ExercisableGates) / float64(r.OriginalGates)
}

// lintOpts configures the before/after structural comparison around
// Resynthesize. The X-cone summary is skipped: it is a whole-design
// fixpoint that says nothing about transformation soundness.
var lintOpts = lint.Options{Disable: []lint.Code{lint.CodeXCone}}

// Generate prunes the unexercisable gates of the analysis result and
// re-synthesizes the design into a bespoke netlist. The pruned netlist is
// then re-linted against the original: re-synthesis must not introduce
// any new structural diagnostic. Constant-tied flip-flop and memory
// controls (NL007/NL008) are exempt — tying controls to the constants the
// symbolic analysis observed is exactly what pruning does.
func Generate(res *core.Result) (*Result, error) {
	before := lint.Run(res.Design, lintOpts)
	rr, err := netlist.Resynthesize(res.Design, res.TieOffs())
	if err != nil {
		return nil, err
	}
	after := lint.Run(rr.Netlist, lintOpts)
	if regress := lint.NewDiags(before, after, lint.CodeDFFControl, lint.CodeMemControl); len(regress) > 0 {
		return nil, fmt.Errorf("bespoke: re-synthesis introduced %d new lint findings; first: %s",
			len(regress), regress[0])
	}
	return &Result{
		Original:         res.Design,
		Bespoke:          rr.Netlist,
		ExercisableGates: res.ExercisableCount,
		OriginalGates:    len(res.Design.Gates),
		BespokeGates:     len(rr.Netlist.Gates),
		Resynth:          rr,
	}, nil
}

// MemInit pins one memory word to a concrete value before a validation
// run: the "fixed known inputs" of paper §5.0.1, injected into the
// application-input words the symbolic analysis left as X.
type MemInit struct {
	Mem  string
	Word int
	Val  logic.Vec
}

// ValidationReport is the outcome of the §5.0.1 validation run.
type ValidationReport struct {
	// Cycles is the length of the concrete run on the original design.
	Cycles uint64
	// OutputsCompared counts per-cycle primary-output observations.
	OutputsCompared int
	// MemWordsCompared counts data-memory words compared at the end.
	MemWordsCompared int
	// ExercisedConcrete is the number of nets the concrete run exercised
	// on the original design.
	ExercisedConcrete int
	// SubsetViolations counts concretely exercised nets the symbolic
	// analysis missed (must be zero).
	SubsetViolations int
}

// concreteRunner drives one design to its terminating condition while
// sampling primary outputs every clock cycle.
type concreteRunner struct {
	sim     *vvp.Simulator
	outputs []netlist.NetID
	samples []logic.Value
}

func newRunner(d *netlist.Netlist, mon *vvp.MonitorXSpec, stim *vvp.Stimulus, inputs []MemInit) (*concreteRunner, error) {
	if err := d.Freeze(); err != nil {
		return nil, err
	}
	sim := vvp.New(d, vvp.Options{})
	sim.SetMonitorX(mon)
	sim.BindStimulus(stim)
	for _, in := range inputs {
		id, ok := d.MemByName(in.Mem)
		if !ok {
			return nil, fmt.Errorf("bespoke: no memory %q", in.Mem)
		}
		sim.SetMemWord(id, in.Word, in.Val)
	}
	return &concreteRunner{sim: sim, outputs: d.Outputs}, nil
}

// skipTo steps the simulation through the reset prefix so both designs
// start sampling at the same cycle.
func (cr *concreteRunner) skipTo(time uint64) error {
	for cr.sim.Now() <= time {
		if _, err := cr.sim.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (cr *concreteRunner) run(maxCycles uint64) error {
	lastCycle := cr.sim.Cycles()
	for {
		status, err := cr.sim.Step()
		if err != nil {
			return err
		}
		if cr.sim.Cycles() != lastCycle {
			lastCycle = cr.sim.Cycles()
			for _, o := range cr.outputs {
				cr.samples = append(cr.samples, cr.sim.Value(o))
			}
		}
		switch status {
		case vvp.Finished:
			return nil
		case vvp.HaltX:
			return fmt.Errorf("bespoke: validation run halted on X at t=%d", cr.sim.Now())
		}
		if cr.sim.Cycles() > maxCycles {
			return fmt.Errorf("bespoke: validation run exceeded %d cycles", maxCycles)
		}
	}
}

// bespokeMonitor builds the reduced $monitor_x spec for the pruned design:
// only the terminating-condition net is required for a concrete run.
func bespokeMonitor(d *netlist.Netlist) (vvp.MonitorXSpec, error) {
	finish, ok := d.NetByName("halted")
	if !ok {
		return vvp.MonitorXSpec{}, fmt.Errorf("bespoke: pruned design lost its halted net")
	}
	return vvp.MonitorXSpec{BranchActive: netlist.NoNet, Cond: netlist.NoNet, Finish: finish}, nil
}

// Validate reruns the application with fixed known inputs on both the
// original and the bespoke netlist and compares cycle-by-cycle primary
// outputs and final data memory (paper §5.0.1). It also verifies that the
// set of gates exercised by the fixed-input run is a subset of the set of
// exercisable gates reported by the symbolic analysis.
func Validate(sym *core.Result, bsp *Result, p *core.Platform, inputs []MemInit, maxCycles uint64) (*ValidationReport, error) {
	rep := &ValidationReport{}

	orig, err := newRunner(p.Design, &p.Monitor, p.Stimulus(), inputs)
	if err != nil {
		return nil, err
	}
	resetEnd := (uint64(2*p.ResetCycles))*p.HalfPeriod + 1
	if err := orig.skipTo(resetEnd); err != nil {
		return nil, err
	}
	orig.sim.StartRecording()
	if err := orig.run(maxCycles); err != nil {
		return nil, err
	}

	mon, err := bespokeMonitor(bsp.Bespoke)
	if err != nil {
		return nil, err
	}
	stim := p.Stimulus()
	stim.Clock = bsp.Bespoke.Inputs[0]
	besp, err := newRunner(bsp.Bespoke, &mon, stim, inputs)
	if err != nil {
		return nil, err
	}
	if err := besp.skipTo(resetEnd); err != nil {
		return nil, err
	}
	if err := besp.run(maxCycles); err != nil {
		return nil, err
	}

	// Output streams must agree wherever the original produced a known
	// value (an X output admits any concrete implementation behaviour).
	if len(orig.samples) != len(besp.samples) {
		return nil, fmt.Errorf("bespoke: output sample counts differ: %d vs %d (cycle counts %d vs %d)",
			len(orig.samples), len(besp.samples), orig.sim.Cycles(), besp.sim.Cycles())
	}
	for i := range orig.samples {
		a, b := orig.samples[i], besp.samples[i]
		if a.IsKnown() && a != b {
			return nil, fmt.Errorf("bespoke: output sample %d differs: original %v, bespoke %v", i, a, b)
		}
		rep.OutputsCompared++
	}

	// Final data memory must agree on known bits.
	for mi, m := range p.Design.Mems {
		if m.IsROM() {
			continue
		}
		bmi, ok := bsp.Bespoke.MemByName(m.Name)
		if !ok {
			return nil, fmt.Errorf("bespoke: memory %q missing from bespoke design", m.Name)
		}
		for w := 0; w < m.Words; w++ {
			av := orig.sim.MemWord(netlist.MemID(mi), w)
			bv := besp.sim.MemWord(bmi, w)
			for bit := 0; bit < av.Width(); bit++ {
				if x := av.Get(bit); x.IsKnown() && x != bv.Get(bit) {
					return nil, fmt.Errorf("bespoke: %s[%d] bit %d differs: %v vs %v", m.Name, w, bit, x, bv.Get(bit))
				}
			}
			rep.MemWordsCompared++
		}
	}

	// Exercised-subset check.
	for n, togg := range orig.sim.Toggled() {
		if !togg {
			continue
		}
		rep.ExercisedConcrete++
		if !sym.ToggledNets[n] {
			rep.SubsetViolations++
		}
	}
	if rep.SubsetViolations > 0 {
		return rep, fmt.Errorf("bespoke: %d concretely exercised nets were not symbolically exercisable", rep.SubsetViolations)
	}
	rep.Cycles = orig.sim.Cycles()
	return rep, nil
}
