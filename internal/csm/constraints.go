package csm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"symsim/internal/logic"
	"symsim/internal/vvp"
)

// ParseConstraints reads the CSM constraint text format of paper §3.3.
// Each non-comment line has the form
//
//	pc=<hex|*> bit=<state-bit-label> val=<0|1>
//
// where the bit label is the one reported by vvp.StateSpec.BitLabel, e.g.
// "dff:regfile_r3[7]" or "mem:dmem[12].4". Lines starting with '#' and
// blank lines are ignored.
func ParseConstraints(r io.Reader, sp *vvp.StateSpec) ([]Constraint, error) {
	var out []Constraint
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := parseConstraintLine(line, sp)
		if err != nil {
			return nil, fmt.Errorf("csm: constraint line %d: %v", lineNo, err)
		}
		out = append(out, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseConstraintLine(line string, sp *vvp.StateSpec) (Constraint, error) {
	var c Constraint
	fields := strings.Fields(line)
	seen := map[string]bool{}
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return c, fmt.Errorf("malformed field %q", f)
		}
		if seen[key] {
			return c, fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		switch key {
		case "pc":
			if val == "*" {
				c.AnyPC = true
				break
			}
			pc, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), 16, 64)
			if err != nil {
				return c, fmt.Errorf("bad pc %q: %v", val, err)
			}
			c.PC = pc
		case "bit":
			bit := sp.BitByLabel(val)
			if bit < 0 {
				return c, fmt.Errorf("unknown state bit %q", val)
			}
			c.Bit = bit
		case "val":
			switch val {
			case "0":
				c.Val = logic.Lo
			case "1":
				c.Val = logic.Hi
			default:
				return c, fmt.Errorf("bad val %q (want 0 or 1)", val)
			}
		default:
			return c, fmt.Errorf("unknown field %q", key)
		}
	}
	if !seen["pc"] || !seen["bit"] || !seen["val"] {
		return c, fmt.Errorf("missing field (need pc=, bit=, val=)")
	}
	return c, nil
}
