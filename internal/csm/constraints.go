package csm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"symsim/internal/logic"
	"symsim/internal/vvp"
)

// FactKind discriminates the constraint fact language. The zero value is
// FactPin, so the original single-bit composite literals of paper §3.3
// ({PC: p, Bit: b, Val: v}) keep their meaning unchanged.
type FactKind uint8

const (
	// FactPin pins one state bit to a known value (the original §3.3
	// constraint form).
	FactPin FactKind = iota
	// FactRange bounds the unsigned value of a register's bit group:
	// Min <= value(Bits) <= Max, Bits listed LSB-first.
	FactRange
	// FactRel relates two state bits: always equal (Eq) or always
	// complementary.
	FactRel
)

// String names the fact kind for error messages.
func (k FactKind) String() string {
	switch k {
	case FactPin:
		return "pin"
	case FactRange:
		return "range"
	case FactRel:
		return "rel"
	}
	return fmt.Sprintf("FactKind(%d)", uint8(k))
}

// Constraint is one designer fact about the application's machine state,
// scoped to the states saved at one PC (or, with AnyPC, at every PC).
// The CSM uses facts two ways: to trim over-approximation out of
// conservative states (paper §3.3, "reduce over-approximation of
// conservative states") and to prove forked child states infeasible
// before they are ever scheduled (see Pruner).
type Constraint struct {
	// Kind selects which fact fields are meaningful; the zero value is
	// FactPin.
	Kind FactKind
	// PC restricts the constraint to states saved at this PC; AnyPC
	// applies it everywhere.
	PC uint64
	// AnyPC makes the constraint PC-independent.
	AnyPC bool

	// Bit is the pinned state-bit index (FactPin; see
	// vvp.StateSpec.BitLabel).
	Bit int
	// Val is the pinned value (FactPin; must be a known level).
	Val logic.Value

	// Bits lists a register's state-bit indices LSB-first (FactRange).
	Bits []int
	// Min and Max bound the unsigned value of Bits, inclusive (FactRange).
	Min, Max uint64

	// A and B are the related state bits (FactRel); Eq selects A == B,
	// otherwise A != B.
	A, B int
	Eq   bool
}

// ConstraintError reports an invalid constraint rejected at construction
// (NewConstrained / NewFacts). It is typed so callers — cliflags
// surfaces it through ManagerFor — can distinguish a bad constraint from
// an I/O or parse failure with errors.As.
type ConstraintError struct {
	// Index is the constraint's position in the rejected list.
	Index int
	// Kind is the fact kind that failed validation.
	Kind FactKind
	// Reason says what is wrong.
	Reason string
}

func (e *ConstraintError) Error() string {
	return fmt.Sprintf("csm: constraint %d (%s): %s", e.Index, e.Kind, e.Reason)
}

// Facts is a validated, immutable set of designer constraints indexed for
// per-PC lookup: the path-condition engine behind the constrained policy.
// The accumulated path condition itself lives in the state vectors — every
// known bit of a halt state is a fact the path's history established
// (observe trims, Specialize pins) — and Facts supplies the designer
// axioms those vectors are checked against and refined with.
type Facts struct {
	bits int
	any  []Constraint
	byPC map[uint64][]Constraint
}

// NewFacts validates cons against a bits-wide state and indexes them for
// per-PC lookup. Invalid constraints are rejected with a *ConstraintError
// naming the offender — a typo'd fact must fail loudly at construction,
// never be skipped silently at observe time.
func NewFacts(bits int, cons []Constraint) (*Facts, error) {
	f := &Facts{bits: bits, byPC: make(map[uint64][]Constraint)}
	for i, con := range cons {
		if err := validateConstraint(i, bits, con); err != nil {
			return nil, err
		}
		if con.AnyPC {
			f.any = append(f.any, con)
		} else {
			f.byPC[con.PC] = append(f.byPC[con.PC], con)
		}
	}
	return f, nil
}

func validateConstraint(i, bits int, con Constraint) error {
	bad := func(format string, args ...any) error {
		return &ConstraintError{Index: i, Kind: con.Kind, Reason: fmt.Sprintf(format, args...)}
	}
	switch con.Kind {
	case FactPin:
		if con.Bit < 0 || con.Bit >= bits {
			return bad("bit %d out of range [0,%d)", con.Bit, bits)
		}
		if con.Val != logic.Lo && con.Val != logic.Hi {
			return bad("pin value %v is not a known level", con.Val)
		}
	case FactRange:
		if len(con.Bits) == 0 {
			return bad("empty bit group")
		}
		if len(con.Bits) > 64 {
			return bad("bit group wider than 64 bits (%d)", len(con.Bits))
		}
		seen := make(map[int]bool, len(con.Bits))
		for _, b := range con.Bits {
			if b < 0 || b >= bits {
				return bad("bit %d out of range [0,%d)", b, bits)
			}
			if seen[b] {
				return bad("bit %d repeated in group", b)
			}
			seen[b] = true
		}
		if con.Min > con.Max {
			return bad("min 0x%x > max 0x%x", con.Min, con.Max)
		}
		if w := len(con.Bits); w < 64 && con.Max >= 1<<uint(w) {
			return bad("max 0x%x does not fit in %d bits", con.Max, w)
		}
	case FactRel:
		if con.A < 0 || con.A >= bits {
			return bad("bit %d out of range [0,%d)", con.A, bits)
		}
		if con.B < 0 || con.B >= bits {
			return bad("bit %d out of range [0,%d)", con.B, bits)
		}
		if con.A == con.B {
			return bad("relation between bit %d and itself", con.A)
		}
	default:
		return bad("unknown fact kind")
	}
	return nil
}

// forEach calls fn for every fact scoped to pc (PC-specific plus AnyPC)
// until fn returns false.
func (f *Facts) forEach(pc uint64, fn func(Constraint) bool) {
	for _, con := range f.any {
		if !fn(con) {
			return
		}
	}
	for _, con := range f.byPC[pc] {
		if !fn(con) {
			return
		}
	}
}

// Empty reports whether the set holds no facts at all.
func (f *Facts) Empty() bool { return len(f.any) == 0 && len(f.byPC) == 0 }

// Feasible reports whether st is consistent with every fact scoped to its
// PC. A state is infeasible only when a fact is provably violated by
// *known* bits — X bits can always still take the asserted values, so
// they never disprove anything. This is the pre-fork prune test: an
// infeasible child state describes behaviours the designer asserts the
// application can never reach, so scheduling it would only simulate
// impossible paths.
func (f *Facts) Feasible(st vvp.State) bool {
	ok := true
	f.forEach(st.PC, func(con Constraint) bool {
		switch con.Kind {
		case FactPin:
			if v := st.Bits.Get(con.Bit); v.IsKnown() && v != con.Val {
				ok = false
			}
		case FactRange:
			lo, hi := rangeBounds(st.Bits, con.Bits)
			if hi < con.Min || lo > con.Max {
				ok = false
			}
		case FactRel:
			a, b := st.Bits.Get(con.A), st.Bits.Get(con.B)
			if a.IsKnown() && b.IsKnown() && (a == b) != con.Eq {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// rangeBounds returns the smallest and largest unsigned values the bit
// group can take: X bits range over both levels, known bits are fixed.
func rangeBounds(v logic.Vec, group []int) (lo, hi uint64) {
	for i, b := range group {
		switch v.Get(b) {
		case logic.Hi:
			lo |= 1 << uint(i)
			hi |= 1 << uint(i)
		case logic.Lo:
		default: // X
			hi |= 1 << uint(i)
		}
	}
	return lo, hi
}

// Apply refines v in place with every fact scoped to pc, trimming
// over-approximation the designer knows to be impossible:
//
//   - pin facts overwrite their bit with the pinned level (the original
//     §3.3 trim semantics);
//   - range facts pin the high-order bits on which Min and Max agree —
//     any value in [Min,Max] shares that prefix — touching only X bits;
//   - relation facts propagate a known bit to an X partner.
//
// Apply only ever turns Xs into the values the facts force (plus the
// historical pin overwrite), so the refined state covers exactly the
// behaviours the designer's axioms leave possible.
func (f *Facts) Apply(pc uint64, v logic.Vec) {
	f.forEach(pc, func(con Constraint) bool {
		switch con.Kind {
		case FactPin:
			v.Set(con.Bit, con.Val)
		case FactRange:
			for i := len(con.Bits) - 1; i >= 0; i-- {
				mn := (con.Min >> uint(i)) & 1
				mx := (con.Max >> uint(i)) & 1
				if mn != mx {
					break
				}
				if v.Get(con.Bits[i]) == logic.X {
					if mn == 1 {
						v.Set(con.Bits[i], logic.Hi)
					} else {
						v.Set(con.Bits[i], logic.Lo)
					}
				}
			}
		case FactRel:
			a, b := v.Get(con.A), v.Get(con.B)
			switch {
			case a.IsKnown() && b == logic.X:
				v.Set(con.B, relPartner(a, con.Eq))
			case b.IsKnown() && a == logic.X:
				v.Set(con.A, relPartner(b, con.Eq))
			}
		}
		return true
	})
}

// relPartner returns the value a relation forces on the partner of a
// known bit.
func relPartner(v logic.Value, eq bool) logic.Value {
	if eq {
		return v
	}
	if v == logic.Hi {
		return logic.Lo
	}
	return logic.Hi
}

// maxConstraintLine bounds one constraint-file line. The default
// bufio.Scanner buffer (64 KiB) rejected long-but-legal lines — a wide
// generated fact or a long comment — with an opaque "token too long".
const maxConstraintLine = 1 << 20

// ParseConstraints reads the CSM constraint text format of paper §3.3,
// extended with range and relation facts. Each non-comment line has one
// of the forms
//
//	pc=<hex|*> bit=<state-bit-label> val=<0|1>
//	pc=<hex|*> reg=<dff-name> min=<hex> max=<hex>
//	pc=<hex|*> rel=<label>==<label>   (or <label>!=<label>)
//
// where a bit label is the one reported by vvp.StateSpec.BitLabel, e.g.
// "dff:regfile_r3[7]" or "mem:dmem[12].4", and reg= names a flip-flop
// register whose bits are labelled "dff:<name>[i]". Hex values accept an
// optional 0x/0X prefix. Lines starting with '#' and blank lines are
// ignored.
//
// The parser resolves labels and field shapes; value-level validation
// (range emptiness, bit-width fit) is NewFacts's job, so a file that
// parses can still be rejected by NewConstrained with a *ConstraintError.
func ParseConstraints(r io.Reader, sp *vvp.StateSpec) ([]Constraint, error) {
	var out []Constraint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxConstraintLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := parseConstraintLine(line, sp)
		if err != nil {
			return nil, fmt.Errorf("csm: constraint line %d: %v", lineNo, err)
		}
		out = append(out, c)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("csm: constraint line %d: longer than %d bytes", lineNo+1, maxConstraintLine)
		}
		return nil, fmt.Errorf("csm: reading constraints after line %d: %w", lineNo, err)
	}
	return out, nil
}

// parseHex parses a hex value with an optional, case-insensitive 0x
// prefix (bare digit strings stay accepted — the original convention).
func parseHex(s string) (uint64, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	return strconv.ParseUint(s, 16, 64)
}

func parseConstraintLine(line string, sp *vvp.StateSpec) (Constraint, error) {
	var c Constraint
	fields := strings.Fields(line)
	seen := map[string]bool{}
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return c, fmt.Errorf("malformed field %q", f)
		}
		if seen[key] {
			return c, fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		switch key {
		case "pc":
			if val == "*" {
				c.AnyPC = true
				break
			}
			pc, err := parseHex(val)
			if err != nil {
				return c, fmt.Errorf("bad pc %q: %v", val, err)
			}
			c.PC = pc
		case "bit":
			bit := sp.BitByLabel(val)
			if bit < 0 {
				return c, fmt.Errorf("unknown state bit %q", val)
			}
			c.Bit = bit
		case "val":
			switch val {
			case "0":
				c.Val = logic.Lo
			case "1":
				c.Val = logic.Hi
			default:
				return c, fmt.Errorf("bad val %q (want 0 or 1)", val)
			}
		case "reg":
			bits, err := regBits(val, sp)
			if err != nil {
				return c, err
			}
			c.Bits = bits
		case "min":
			mn, err := parseHex(val)
			if err != nil {
				return c, fmt.Errorf("bad min %q: %v", val, err)
			}
			c.Min = mn
		case "max":
			mx, err := parseHex(val)
			if err != nil {
				return c, fmt.Errorf("bad max %q: %v", val, err)
			}
			c.Max = mx
		case "rel":
			a, b, eq, err := parseRel(val, sp)
			if err != nil {
				return c, err
			}
			c.A, c.B, c.Eq = a, b, eq
		default:
			return c, fmt.Errorf("unknown field %q", key)
		}
	}
	if !seen["pc"] {
		return c, fmt.Errorf("missing field pc=")
	}
	pin := seen["bit"] || seen["val"]
	rng := seen["reg"] || seen["min"] || seen["max"]
	rel := seen["rel"]
	switch {
	case pin && !rng && !rel:
		if !seen["bit"] || !seen["val"] {
			return c, fmt.Errorf("pin fact needs bit= and val=")
		}
		c.Kind = FactPin
	case rng && !pin && !rel:
		if !seen["reg"] || !seen["min"] || !seen["max"] {
			return c, fmt.Errorf("range fact needs reg=, min= and max=")
		}
		c.Kind = FactRange
	case rel && !pin && !rng:
		c.Kind = FactRel
	default:
		return c, fmt.Errorf("need exactly one fact form: bit=/val=, reg=/min=/max=, or rel=")
	}
	return c, nil
}

// regBits resolves a register name to its state bits, LSB-first, via the
// "dff:<name>[i]" labels (falling back to "dff:<name>" for a 1-bit
// register).
func regBits(name string, sp *vvp.StateSpec) ([]int, error) {
	var bits []int
	for i := 0; i <= 64; i++ {
		b := sp.BitByLabel(fmt.Sprintf("dff:%s[%d]", name, i))
		if b < 0 {
			break
		}
		if i == 64 {
			return nil, fmt.Errorf("register %q wider than 64 bits", name)
		}
		bits = append(bits, b)
	}
	if len(bits) == 0 {
		if b := sp.BitByLabel("dff:" + name); b >= 0 {
			bits = append(bits, b)
		}
	}
	if len(bits) == 0 {
		return nil, fmt.Errorf("unknown register %q", name)
	}
	return bits, nil
}

// parseRel parses "<label>==<label>" or "<label>!=<label>".
func parseRel(val string, sp *vvp.StateSpec) (a, b int, eq bool, err error) {
	la, lb, ok := strings.Cut(val, "==")
	eq = true
	if !ok {
		la, lb, ok = strings.Cut(val, "!=")
		eq = false
	}
	if !ok {
		return 0, 0, false, fmt.Errorf("bad rel %q (want <label>==<label> or <label>!=<label>)", val)
	}
	if a = sp.BitByLabel(la); a < 0 {
		return 0, 0, false, fmt.Errorf("unknown state bit %q", la)
	}
	if b = sp.BitByLabel(lb); b < 0 {
		return 0, 0, false, fmt.Errorf("unknown state bit %q", lb)
	}
	if a == b {
		return 0, 0, false, fmt.Errorf("rel %q relates a bit to itself", val)
	}
	return a, b, eq, nil
}
