package csm

import (
	"fmt"
	"testing"

	"symsim/internal/logic"
	"symsim/internal/vvp"
)

// FuzzExportImportRoundTrip drives every merge policy with an arbitrary
// observation stream and checks the three properties the distributed
// coordinator leans on (internal/cluster):
//
//   - Export is a faithful snapshot: importing Export(A) into a fresh
//     manager B and exporting again yields the identical state list —
//     the checkpoint currency round-trips losslessly.
//   - Merges are covering: after the import, every state A ever observed
//     is subsumed by B. This is the remote-decision replay lemma behind
//     exactly-once crash recovery — a worker that dies mid-shard and is
//     re-simulated halts in states the authoritative CSM already covers,
//     so the retry observes "subsumed" and registers nothing twice.
//   - Explored verdicts converge: re-observing the Explore state a
//     policy hands back is subsumed immediately (constrained may pin
//     bits against the stored merge and needs one extra widening
//     round, but never more).
//
// Each 3-byte chunk of input encodes one observation over an 8-bit
// state: PC (mod 5, keeping per-PC tables busy), known values, X mask.
func FuzzExportImportRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xff, 0x00})
	f.Add([]byte{0x01, 0x0f, 0xf0, 0x01, 0xf0, 0x0f})
	f.Add([]byte{0x02, 0xaa, 0x55, 0x03, 0x55, 0xaa, 0x02, 0x00, 0xff})
	f.Add([]byte{
		0x00, 0x01, 0x00, 0x00, 0x02, 0x00, 0x00, 0x04, 0x00,
		0x01, 0x08, 0x00, 0x01, 0x10, 0x00, 0x04, 0x20, 0x00,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		var states []vvp.State
		for i := 0; i+2 < len(data) && len(states) < 64; i += 3 {
			v := logic.NewVec(8)
			for b := 0; b < 8; b++ {
				switch {
				case data[i+2]&(1<<b) != 0:
					v.Set(b, logic.X)
				case data[i+1]&(1<<b) != 0:
					v.Set(b, logic.Hi)
				}
			}
			states = append(states, vvp.State{PC: uint64(data[i] % 5), Bits: v, PCKnown: true})
		}

		policies := []struct {
			name string
			mk   func() Manager
			// pinRounds is how many extra Observe rounds an Explore
			// verdict may need before subsumption: constrained pins bits
			// against the stored merge, which can force one widening.
			pinRounds int
		}{
			{"merge-all", NewMergeAll, 0},
			{"clustered", func() Manager { return NewClustered(3) }, 0},
			{"exact", func() Manager { return NewExact(16) }, 0},
			{"constrained", func() Manager {
				m, err := NewConstrained(8, []Constraint{
					{AnyPC: true, Bit: 0, Val: logic.Lo},
					{PC: 2, Bit: 3, Val: logic.Hi},
					{Kind: FactRange, PC: 3, Bits: []int{4, 5, 6}, Min: 2, Max: 3},
					{Kind: FactRel, PC: 4, A: 1, B: 2, Eq: false},
				})
				if err != nil {
					t.Fatal(err)
				}
				return m
			}, 1},
		}
		for _, pc := range policies {
			t.Run(pc.name, func(t *testing.T) {
				a := pc.mk()
				for _, s := range states {
					d := a.Observe(s.Clone())
					if d.Subsumed {
						continue
					}
					// Explored verdicts converge: the state handed back is
					// covered by what the manager now stores.
					ex := d.Explore
					for r := 0; ; r++ {
						rd := a.Observe(ex.Clone())
						if rd.Subsumed {
							break
						}
						if r >= pc.pinRounds {
							t.Fatalf("explore verdict for %v never converged", s.Bits)
						}
						ex = rd.Explore
					}
				}

				expA := a.Export()
				b := pc.mk()
				if err := b.Import(expA); err != nil {
					t.Fatalf("import of own export rejected: %v", err)
				}
				expB := b.Export()
				if err := sameSavedStates(expA, expB); err != nil {
					t.Fatalf("export did not round-trip: %v", err)
				}
				if got, want := b.States(), a.States(); got != want {
					t.Fatalf("imported manager has %d states, original %d", got, want)
				}
				// The replay lemma: everything A observed, B subsumes.
				for i, s := range states {
					if d := b.Observe(s.Clone()); !d.Subsumed {
						t.Fatalf("state %d (%v @ pc %d) not subsumed after round-trip", i, s.Bits, s.PC)
					}
				}
			})
		}
	})
}

// sameSavedStates compares two export snapshots entry by entry.
func sameSavedStates(a, b []SavedState) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d states vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].PC != b[i].PC || !a[i].Bits.Equal(b[i].Bits) {
			return fmt.Errorf("state %d: %d/%v vs %d/%v", i, a[i].PC, a[i].Bits, b[i].PC, b[i].Bits)
		}
	}
	return nil
}
