package csm

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"symsim/internal/logic"
	"symsim/internal/vvp"
)

func st(pc uint64, bits string) vvp.State {
	return vvp.State{PC: pc, Bits: logic.MustVec(bits), PCKnown: true}
}

func TestMergeAllBasics(t *testing.T) {
	m := NewMergeAll()
	if m.Name() != "merge-all" {
		t.Errorf("name = %q", m.Name())
	}
	// First state at a PC: explored as-is.
	d := m.Observe(st(0x10, "0101"))
	if d.Subsumed || !d.Explore.Bits.Equal(logic.MustVec("0101")) {
		t.Fatalf("first observe: %+v", d)
	}
	// Identical state: subsumed.
	if d := m.Observe(st(0x10, "0101")); !d.Subsumed {
		t.Fatal("identical state not subsumed")
	}
	// Different state: merged superstate explored.
	d = m.Observe(st(0x10, "0111"))
	if d.Subsumed {
		t.Fatal("differing state subsumed")
	}
	if got := d.Explore.Bits.String(); got != "01x1" {
		t.Fatalf("merged = %s, want 01x1", got)
	}
	// A state covered by the merged one: subsumed.
	if d := m.Observe(st(0x10, "0101")); !d.Subsumed {
		t.Fatal("covered state not subsumed")
	}
	// Same bits at a different PC: separate entry.
	if d := m.Observe(st(0x20, "0101")); d.Subsumed {
		t.Fatal("state at new PC subsumed")
	}
	if m.States() != 2 {
		t.Fatalf("states = %d, want 2", m.States())
	}
}

func TestMergeAllConvergesToFixpoint(t *testing.T) {
	m := NewMergeAll()
	r := rand.New(rand.NewSource(7))
	width := 24
	nonSubsumed := 0
	for i := 0; i < 1000; i++ {
		v := logic.NewVec(width)
		for b := 0; b < width; b++ {
			v.Set(b, []logic.Value{logic.Lo, logic.Hi}[r.Intn(2)])
		}
		if d := m.Observe(vvp.State{PC: 1, Bits: v, PCKnown: true}); !d.Subsumed {
			nonSubsumed++
		}
	}
	// Each non-subsumed observation adds at least one X bit, so the count
	// is bounded by the state width plus the initial observation.
	if nonSubsumed > width+1 {
		t.Fatalf("non-subsumed = %d, exceeds width bound %d", nonSubsumed, width+1)
	}
}

func TestExactPolicy(t *testing.T) {
	e := NewExact(0)
	if d := e.Observe(st(1, "00")); d.Subsumed {
		t.Fatal("first state subsumed")
	}
	if d := e.Observe(st(1, "01")); d.Subsumed {
		t.Fatal("distinct state subsumed")
	}
	if d := e.Observe(st(1, "00")); !d.Subsumed {
		t.Fatal("repeat state not subsumed")
	}
	if e.States() != 2 {
		t.Fatalf("states = %d", e.States())
	}
	// No merging: explored states are exact copies.
	d := e.Observe(st(1, "11"))
	if got := d.Explore.Bits.String(); got != "11" {
		t.Fatalf("exact explored %s", got)
	}
}

func TestExactSafetyValveMerges(t *testing.T) {
	e := NewExact(2)
	e.Observe(st(1, "0000"))
	e.Observe(st(1, "0001"))
	// Budget exhausted: next distinct state merges into slot 0.
	d := e.Observe(st(1, "0010"))
	if d.Subsumed {
		t.Fatal("valve observation subsumed")
	}
	if d.Explore.Bits.CountX() == 0 {
		t.Fatalf("valve did not merge: %s", d.Explore.Bits)
	}
}

func TestClusteredKeepsKStates(t *testing.T) {
	c := NewClustered(2)
	if !strings.Contains(c.Name(), "clustered") {
		t.Errorf("name = %q", c.Name())
	}
	c.Observe(st(1, "0000"))
	c.Observe(st(1, "1111"))
	if c.States() != 2 {
		t.Fatalf("states = %d", c.States())
	}
	// Third state merges into the nearest cluster (0001 -> 0000).
	d := c.Observe(st(1, "0001"))
	if d.Subsumed {
		t.Fatal("subsumed")
	}
	if got := d.Explore.Bits.String(); got != "000x" {
		t.Fatalf("merged into wrong cluster: %s", got)
	}
	if c.States() != 2 {
		t.Fatalf("cluster count grew: %d", c.States())
	}
	// A state covered by either cluster is subsumed.
	if d := c.Observe(st(1, "1111")); !d.Subsumed {
		t.Fatal("cluster member not subsumed")
	}
}

func TestClusteredRequiresPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	NewClustered(0)
}

// mustConstrained builds a constrained policy or fails the test.
func mustConstrained(t testing.TB, bits int, cons []Constraint) Manager {
	t.Helper()
	c, err := NewConstrained(bits, cons)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConstrainedAppliesConstraints(t *testing.T) {
	cons := []Constraint{
		{PC: 1, Bit: 0, Val: logic.Lo},
		{AnyPC: true, Bit: 2, Val: logic.Hi},
	}
	c := mustConstrained(t, 4, cons)
	if c.Name() != "constrained" {
		t.Errorf("name = %q", c.Name())
	}
	c.Observe(st(1, "0000"))
	d := c.Observe(st(1, "1111"))
	if d.Subsumed {
		t.Fatal("subsumed")
	}
	// Merge-all gives xxxx; constraints pin bit0 (pc=1) and bit2 (any).
	if got := d.Explore.Bits.String(); got != "x1x0" {
		t.Fatalf("constrained merge = %s, want x1x0", got)
	}
	// At another PC only the AnyPC constraint applies.
	c.Observe(st(2, "0000"))
	d = c.Observe(st(2, "1111"))
	if got := d.Explore.Bits.String(); got != "x1xx" {
		t.Fatalf("constrained merge at other PC = %s, want x1xx", got)
	}
}

// Regression for the constrained verdict leak: a state whose fact-trimmed
// form is already covered by the stored conservative state must be
// subsumed, not reported as a fork. The pre-PR-10 policy pinned bits only
// after the inner merge-all verdict and never re-tested subsumption, so
// this Observe created two worklist entries the constraints themselves
// prove redundant.
func TestConstrainedRetestsSubsumptionAfterPin(t *testing.T) {
	c := mustConstrained(t, 2, []Constraint{{AnyPC: true, Bit: 0, Val: logic.Lo}})
	if d := c.Observe(st(1, "x0")); d.Subsumed {
		t.Fatal("first observation subsumed")
	}
	// Raw "01" is not covered by the stored "x0" (bit 0 differs), but the
	// designer pins bit 0 low: the state actually simulated would be "00",
	// which the stored state covers.
	d := c.Observe(st(1, "01"))
	if !d.Subsumed {
		t.Fatalf("pinned-covered state reported as fork: explore=%v", d.Explore.Bits)
	}
	// And the table stays untouched: the stored state already covers
	// everything this halt can do.
	if got := c.States(); got != 1 {
		t.Fatalf("states = %d, want 1", got)
	}
	if exp := c.Export(); len(exp) != 1 || exp[0].Bits.String() != "x0" {
		t.Fatalf("stored state changed: %+v", exp)
	}
}

// Regression for silent constraint skipping: an out-of-range bit (or any
// otherwise-invalid fact) must be rejected at construction with a typed
// error, never ignored forever at observe time.
func TestNewConstrainedRejectsBadConstraints(t *testing.T) {
	for _, tc := range []struct {
		name string
		cons []Constraint
	}{
		{"bit-too-big", []Constraint{{AnyPC: true, Bit: 7, Val: logic.Hi}}},
		{"bit-negative", []Constraint{{AnyPC: true, Bit: -1, Val: logic.Hi}}},
		{"x-pin", []Constraint{{AnyPC: true, Bit: 0, Val: logic.X}}},
		{"empty-range", []Constraint{{Kind: FactRange, AnyPC: true}}},
		{"range-bit-out", []Constraint{{Kind: FactRange, AnyPC: true, Bits: []int{0, 9}, Max: 3}}},
		{"range-dup-bit", []Constraint{{Kind: FactRange, AnyPC: true, Bits: []int{1, 1}, Max: 3}}},
		{"inverted-range", []Constraint{{Kind: FactRange, AnyPC: true, Bits: []int{0, 1}, Min: 3, Max: 1}}},
		{"overflow-range", []Constraint{{Kind: FactRange, AnyPC: true, Bits: []int{0, 1}, Max: 4}}},
		{"self-rel", []Constraint{{Kind: FactRel, AnyPC: true, A: 1, B: 1}}},
		{"rel-bit-out", []Constraint{{Kind: FactRel, AnyPC: true, A: 0, B: 4}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewConstrained(4, tc.cons)
			if err == nil {
				t.Fatal("invalid constraint accepted")
			}
			var ce *ConstraintError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConstraintError", err)
			}
			if ce.Index != 0 {
				t.Errorf("index = %d, want 0", ce.Index)
			}
		})
	}
	// A valid set still constructs.
	if _, err := NewConstrained(4, []Constraint{
		{AnyPC: true, Bit: 3, Val: logic.Hi},
		{Kind: FactRange, PC: 2, Bits: []int{0, 1}, Min: 1, Max: 2},
		{Kind: FactRel, AnyPC: true, A: 0, B: 1, Eq: false},
	}); err != nil {
		t.Fatalf("valid constraints rejected: %v", err)
	}
}

// The heat-directed merge ordering: a cold PC keeps distinct states
// (lazy), a hot PC collapses everything into one superstate (eager), and
// a cold PC that outgrows ColdMaxStates collapses regardless.
func TestConstrainedMergeOrderingByHeat(t *testing.T) {
	c := mustConstrained(t, 4, nil)
	heat := map[uint64]int{1: 0, 2: HotForkThreshold}
	c.(HeatSink).SetHeat(func(pc uint64) int { return heat[pc] })

	// Cold PC: two differing states stay distinct.
	c.Observe(st(1, "0000"))
	d := c.Observe(st(1, "1111"))
	if d.Subsumed || d.Explore.Bits.CountX() != 0 {
		t.Fatalf("cold PC merged eagerly: %+v", d.Explore.Bits)
	}
	if c.States() != 2 {
		t.Fatalf("cold states = %d, want 2", c.States())
	}

	// Hot PC: the same pair collapses into one superstate.
	c.Observe(st(2, "0000"))
	d = c.Observe(st(2, "1111"))
	if d.Subsumed || d.Explore.Bits.String() != "xxxx" {
		t.Fatalf("hot PC did not merge: %+v", d.Explore.Bits)
	}
	if c.States() != 3 {
		t.Fatalf("states after hot merge = %d, want 3", c.States())
	}

	// Cold overflow: past ColdMaxStates the PC collapses regardless.
	for _, bits := range []string{"0011", "1100", "0101", "1010"} {
		c.Observe(st(1, bits))
	}
	if got := len(c.Export()); got != 2 {
		// PC 1 must have collapsed to a single state; PC 2 already has one.
		t.Fatalf("exported states = %d, want 2 (cold PC did not collapse)", got)
	}
}

func TestManagersAreConcurrencySafe(t *testing.T) {
	cons := mustConstrained(t, 16, []Constraint{{AnyPC: true, Bit: 15, Val: logic.Lo}})
	for _, m := range []Manager{NewMergeAll(), NewClustered(3), NewExact(100), cons} {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 200; i++ {
					v := logic.NewVec(16)
					for b := 0; b < 16; b++ {
						v.Set(b, []logic.Value{logic.Lo, logic.Hi, logic.X}[r.Intn(3)])
					}
					m.Observe(vvp.State{PC: uint64(r.Intn(4)), Bits: v, PCKnown: true})
				}
			}(int64(w))
		}
		wg.Wait()
		if m.States() == 0 {
			t.Errorf("%s: no states after concurrent observes", m.Name())
		}
	}
}
