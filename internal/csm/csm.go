// Package csm implements the Conservative State Manager of paper §3.3: a
// repository of previously-simulated symbolic states indexed by the PC of
// the PC-changing instruction at which they were observed. When the
// simulator halts and hands over a state, the CSM either recognizes it as a
// subset of what has already been simulated for that PC (no further
// simulation required) or produces a more conservative superstate covering
// both, to be pushed onto the unprocessed-path worklist.
//
// How conservative states are formed is configurable (paper Figure 3):
// MergeAll reproduces the single-uber-state approach of prior work [4],
// Clustered keeps up to k states per PC trading simulation effort for less
// over-approximation, Exact never merges (exhaustive path enumeration),
// and Constrained refines states with user-supplied application facts in
// the style of [15] — trimming each observation before the subsumption
// test, proving forked children infeasible before they are scheduled
// (Pruner), and ordering merges by per-PC fork heat (HeatSink).
package csm

import (
	"fmt"
	"sort"
	"sync"

	"symsim/internal/logic"
	"symsim/internal/vvp"
)

// Decision is the CSM's verdict on one halted state.
type Decision struct {
	// Subsumed is true when the state is covered by an already-simulated
	// conservative state for the same PC; the path needs no further
	// exploration (Algorithm 1 line 26).
	Subsumed bool
	// Remote is true when the decision was made by a remote authoritative
	// Manager (a cluster coordinator) that registered the fork children on
	// its own frontier. The local scheduler must then not fork: the path
	// segment is finished here and its children will be simulated by
	// whichever worker leases them. Remote decisions carry a zero-width
	// Explore state.
	Remote bool
	// Explore is the (possibly merged, possibly constrained) state to
	// continue simulating when Subsumed is false. Zero-width when Remote.
	Explore vvp.State
}

// SavedState is one exported conservative state: the PC it is indexed by
// plus its ternary machine-state valuation. Slices of SavedState are the
// checkpoint currency of run governance — a Manager drains into them when
// a run is checkpointed and reseeds from them on resume.
type SavedState struct {
	PC   uint64
	Bits logic.Vec
}

// Manager is the interface of a conservative state repository. Observe is
// safe for concurrent use; parallel path workers share one Manager.
type Manager interface {
	// Observe presents the state saved at a halt and returns the
	// exploration decision.
	Observe(st vvp.State) Decision
	// Name identifies the policy for reports.
	Name() string
	// States returns the number of conservative states currently stored.
	States() int
	// Export snapshots every stored conservative state in a deterministic
	// order (ascending PC, insertion order within a PC), so checkpoint
	// encodings are reproducible.
	Export() []SavedState
	// Import seeds the manager with previously exported states, merging
	// them with anything already stored under the policy's own rules. All
	// imported states must share one bit width.
	Import(states []SavedState) error
}

// checkWidths rejects an import batch whose states disagree on width —
// such a batch cannot have come from one Export and would poison later
// Subset/Merge calls.
func checkWidths(states []SavedState) error {
	for i := 1; i < len(states); i++ {
		if states[i].Bits.Width() != states[0].Bits.Width() {
			return fmt.Errorf("csm: import width mismatch: state %d has %d bits, state 0 has %d",
				i, states[i].Bits.Width(), states[0].Bits.Width())
		}
	}
	return nil
}

// sortedPCs returns the keys of a per-PC table in ascending order.
func sortedPCs[V any](table map[uint64]V) []uint64 {
	pcs := make([]uint64, 0, len(table))
	for pc := range table {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// --- MergeAll: the prior-work policy [4] ---

// mergeAll keeps exactly one conservative state per PC and merges every
// non-subsumed arrival into it, replacing all differing bits with X: the
// quickest-converging, most conservative policy (Figure 3, red).
type mergeAll struct {
	mu    sync.Mutex
	table map[uint64]logic.Vec
}

// NewMergeAll returns the default CSM policy: one uber-conservative state
// per PC.
func NewMergeAll() Manager {
	return &mergeAll{table: make(map[uint64]logic.Vec)}
}

func (m *mergeAll) Name() string { return "merge-all" }

func (m *mergeAll) States() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.table)
}

func (m *mergeAll) Export() []SavedState {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []SavedState
	for _, pc := range sortedPCs(m.table) {
		out = append(out, SavedState{PC: pc, Bits: m.table[pc].Clone()})
	}
	return out
}

func (m *mergeAll) Import(states []SavedState) error {
	if err := checkWidths(states); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range states {
		if c, ok := m.table[s.PC]; ok {
			m.table[s.PC] = c.Merge(s.Bits)
		} else {
			m.table[s.PC] = s.Bits.Clone()
		}
	}
	return nil
}

func (m *mergeAll) Observe(st vvp.State) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.table[st.PC]
	if ok && st.Bits.Subset(c) {
		return Decision{Subsumed: true}
	}
	var merged logic.Vec
	if ok {
		merged = c.Merge(st.Bits)
	} else {
		merged = st.Bits.Clone()
	}
	m.table[st.PC] = merged
	out := st
	out.Bits = merged.Clone()
	return Decision{Explore: out}
}

// --- Exact: no merging ---

// exact records every distinct state and never merges: full path
// enumeration, intractable for complex control flow (the motivation for
// conservative states) but exact. Bounded by MaxStates as a safety valve.
type exact struct {
	mu    sync.Mutex
	table map[uint64][]logic.Vec
	n     int
	max   int
}

// NewExact returns a no-merge policy that explores every distinct state.
// maxStates bounds total stored states (0 = unlimited).
func NewExact(maxStates int) Manager {
	return &exact{table: make(map[uint64][]logic.Vec), max: maxStates}
}

func (e *exact) Name() string { return "exact" }

func (e *exact) States() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

func (e *exact) Export() []SavedState {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []SavedState
	for _, pc := range sortedPCs(e.table) {
		for _, v := range e.table[pc] {
			out = append(out, SavedState{PC: pc, Bits: v.Clone()})
		}
	}
	return out
}

func (e *exact) Import(states []SavedState) error {
	if err := checkWidths(states); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range states {
		e.table[s.PC] = append(e.table[s.PC], s.Bits.Clone())
		e.n++
	}
	return nil
}

func (e *exact) Observe(st vvp.State) Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.table[st.PC] {
		if st.Bits.Subset(c) {
			return Decision{Subsumed: true}
		}
	}
	if e.max > 0 && e.n >= e.max {
		// Safety valve: behave like merge-all once the budget is spent,
		// guaranteeing convergence.
		if len(e.table[st.PC]) > 0 {
			c := e.table[st.PC][0]
			merged := c.Merge(st.Bits)
			e.table[st.PC][0] = merged
			out := st
			out.Bits = merged.Clone()
			return Decision{Explore: out}
		}
	}
	e.table[st.PC] = append(e.table[st.PC], st.Bits.Clone())
	e.n++
	return Decision{Explore: st.Clone()}
}

// --- Clustered: up to k conservative states per PC ---

// clustered keeps up to k conservative states per PC; a non-subsumed
// arrival merges into the nearest existing state (ternary Hamming
// distance) once the budget is full — the middle ground of Figure 3
// (blue): more simulation effort than merge-all, less over-approximation.
type clustered struct {
	mu    sync.Mutex
	k     int
	table map[uint64][]logic.Vec
	n     int
}

// NewClustered returns a policy keeping up to k conservative states per
// PC. k must be at least 1; k == 1 degenerates to MergeAll.
func NewClustered(k int) Manager {
	if k < 1 {
		panic("csm: NewClustered requires k >= 1")
	}
	return &clustered{k: k, table: make(map[uint64][]logic.Vec)}
}

func (c *clustered) Name() string { return fmt.Sprintf("clustered-%d", c.k) }

func (c *clustered) States() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *clustered) Export() []SavedState {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SavedState
	for _, pc := range sortedPCs(c.table) {
		for _, v := range c.table[pc] {
			out = append(out, SavedState{PC: pc, Bits: v.Clone()})
		}
	}
	return out
}

func (c *clustered) Import(states []SavedState) error {
	if err := checkWidths(states); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range states {
		// Respect the per-PC budget on import: overflow merges into the
		// first cluster rather than growing past k.
		if len(c.table[s.PC]) < c.k {
			c.table[s.PC] = append(c.table[s.PC], s.Bits.Clone())
			c.n++
		} else {
			c.table[s.PC][0] = c.table[s.PC][0].Merge(s.Bits)
		}
	}
	return nil
}

func (c *clustered) Observe(st vvp.State) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	states := c.table[st.PC]
	for _, cs := range states {
		if st.Bits.Subset(cs) {
			return Decision{Subsumed: true}
		}
	}
	if len(states) < c.k {
		c.table[st.PC] = append(states, st.Bits.Clone())
		c.n++
		return Decision{Explore: st.Clone()}
	}
	best, bestD := 0, -1
	for i, cs := range states {
		d := st.Bits.HammingKnown(cs)
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	merged := states[best].Merge(st.Bits)
	states[best] = merged
	out := st
	out.Bits = merged.Clone()
	return Decision{Explore: out}
}

// --- Constrained: merge-all refined by application constraints [15] ---

// Pruner is implemented by managers that can prove a forked child state
// infeasible under designer constraints. The scheduler consults it
// *before* a fork child is pushed onto the worklist (and the cluster
// coordinator before a child is registered on a unit or spilled to the
// shared frontier), so provably-impossible paths are never scheduled at
// all — the constraint-aware answer to path explosion, versus merging
// the damage away after the fork.
type Pruner interface {
	// FeasibleChild reports whether st is consistent with every
	// constraint scoped to its PC. Must be safe for concurrent use and
	// cheap: it runs under the scheduler lock.
	FeasibleChild(st vvp.State) bool
}

// HeatSink is implemented by managers whose merge ordering consults
// per-PC fork heat. The analysis injects a heat source (its per-run
// fork-by-PC counters) before instrumenting the policy; heat calls are
// serialized by the same scheduler-lock discipline as Observe.
type HeatSink interface {
	// SetHeat installs the heat source: heat(pc) is how many forks the
	// run has observed at pc so far. A nil heat source (the default)
	// selects eager merging everywhere.
	SetHeat(heat func(pc uint64) int)
}

// Merge-ordering knobs for the constrained policy.
const (
	// HotForkThreshold is the per-PC fork count at which the policy
	// switches from lazy clustering to eager merge-all for that PC: a PC
	// forking this often is a convergence point (a loop branch) where
	// one wide superstate ends the explosion fastest.
	HotForkThreshold = 4
	// ColdMaxStates bounds the distinct states a cold PC may accumulate
	// before it collapses regardless of heat — lazy merging trades
	// precision for extra paths, and the trade is only worth it while
	// the PC stays quiet.
	ColdMaxStates = 4
)

// constrained owns a per-PC table of conservative states refined by
// designer facts (paper §3.3 [15]). Every incoming halt state is trimmed
// by the facts *before* the subsumption test — so a trimmed state an
// existing conservative state already covers is recognized as subsumed
// instead of being reported as a fresh fork (the pre-PR-10 verdict leak).
// Merge ordering is heat-directed: hot PCs merge eagerly into one
// superstate (fast convergence where paths concentrate), cold PCs keep up
// to ColdMaxStates distinct states (less over-approximation where the
// extra paths are cheap). Without a heat source every PC merges eagerly,
// reproducing merge-all-with-trim.
type constrained struct {
	mu    sync.Mutex
	facts *Facts
	table map[uint64][]logic.Vec
	n     int
	heat  func(pc uint64) int
}

// NewConstrained builds the constrained policy from application
// constraints. bits is the state width (vvp.StateSpec.Bits()). Invalid
// constraints — an out-of-range bit, a non-binary pin value, an empty
// range — are rejected with a *ConstraintError instead of being silently
// skipped at observe time.
func NewConstrained(bits int, cons []Constraint) (Manager, error) {
	f, err := NewFacts(bits, cons)
	if err != nil {
		return nil, err
	}
	return &constrained{facts: f, table: make(map[uint64][]logic.Vec)}, nil
}

func (c *constrained) Name() string { return "constrained" }

func (c *constrained) States() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *constrained) SetHeat(heat func(pc uint64) int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heat = heat
}

// FeasibleChild implements Pruner: facts are immutable after
// construction, so the check needs no lock.
func (c *constrained) FeasibleChild(st vvp.State) bool {
	return c.facts.Feasible(st)
}

func (c *constrained) Export() []SavedState {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SavedState
	for _, pc := range sortedPCs(c.table) {
		for _, v := range c.table[pc] {
			out = append(out, SavedState{PC: pc, Bits: v.Clone()})
		}
	}
	return out
}

// Import appends the states verbatim (like exact), so Export/Import
// round-trips losslessly; a PC restored above ColdMaxStates collapses on
// its next eager observe.
func (c *constrained) Import(states []SavedState) error {
	if err := checkWidths(states); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range states {
		c.table[s.PC] = append(c.table[s.PC], s.Bits.Clone())
		c.n++
	}
	return nil
}

func (c *constrained) Observe(st vvp.State) Decision {
	// Trim the observation with the designer facts before anything else:
	// the subsumption test must see the state that would actually be
	// simulated. Pre-PR-10 the pins were applied after the merge verdict,
	// so a pinned state the stored state already covered was still
	// reported as a fork.
	trimmed := st.Bits.Clone()
	c.facts.Apply(st.PC, trimmed)

	c.mu.Lock()
	defer c.mu.Unlock()
	states := c.table[st.PC]
	for _, cs := range states {
		if trimmed.Subset(cs) {
			return Decision{Subsumed: true}
		}
	}
	// Merge ordering: cold PCs accumulate distinct states lazily; hot PCs
	// (and everything, absent a heat source) collapse eagerly into one
	// superstate.
	eager := c.heat == nil || c.heat(st.PC) >= HotForkThreshold
	if !eager && len(states) < ColdMaxStates {
		c.table[st.PC] = append(states, trimmed.Clone())
		c.n++
		out := st
		out.Bits = trimmed
		return Decision{Explore: out}
	}
	// No fact re-application after the merge: stored states must keep
	// covering every trimmed observation (the cluster replay lemma), and
	// merging trimmed states preserves that on its own — pins the
	// observations agree on survive a merge unaided.
	merged := trimmed
	for _, cs := range states {
		merged = merged.Merge(cs)
	}
	c.n -= len(states)
	c.table[st.PC] = []logic.Vec{merged}
	c.n++
	out := st
	out.Bits = merged.Clone()
	return Decision{Explore: out}
}
