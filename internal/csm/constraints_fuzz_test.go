package csm

import (
	"strings"
	"testing"

	"symsim/internal/logic"
)

// FuzzParseConstraints drives the §3.3 constraint-text parser with
// arbitrary input. The contract under fuzz: never panic, reject with a
// non-empty error or accept, and every accepted fact is fully resolved —
// pin facts carry a bit index the spec knows and a two-valued pin value,
// range facts carry in-range value bits, relations carry two distinct
// in-range bits. The parser feeds NewConstrained directly, so anything
// accepted here must also construct (or fail with a typed error, never
// panic) downstream.
func FuzzParseConstraints(f *testing.F) {
	f.Add("pc=0x14 bit=dff:pc[0] val=0\npc=* bit=dff:pc[1] val=1\n")
	f.Add("# comment only\n\n")
	f.Add("pc=0x14 bit=dff:pc[0] val=0 val=1\n")
	f.Add("pc=zz bit=dff:pc[0] val=0\n")
	f.Add("bit=dff:pc[0] val=1\n")
	f.Add("pc=* bit=mem:dmem[12].4 val=1\n")
	f.Add("pc=0xffffffffffffffff bit=dff:pc[1] val=1\r\n")
	f.Add("pc=* bit=dff:pc[1]")
	f.Add("pc=0X1A bit=dff:pc[0] val=0\n")
	f.Add("pc=* reg=pc min=0x0 max=0x3\n")
	f.Add("pc=0x14 reg=pc min=0X1 max=2\n")
	f.Add("pc=* reg=pc min=0x3 max=0x1\n")
	f.Add("pc=0x14 rel=dff:pc[0]!=dff:pc[1]\n")
	f.Add("pc=* rel=dff:pc[0]==dff:pc[1]\n")
	f.Add("pc=* rel=dff:pc[0]==dff:pc[0]\n")
	f.Add("pc=* bit=dff:pc[0] val=0 reg=pc min=0 max=1\n")
	sp := constraintSpec(f)
	f.Fuzz(func(t *testing.T, text string) {
		cons, err := ParseConstraints(strings.NewReader(text), sp)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		for i, c := range cons {
			switch c.Kind {
			case FactPin:
				if c.Bit < 0 || c.Bit >= sp.Bits() {
					t.Fatalf("constraint %d: bit %d out of range [0,%d)", i, c.Bit, sp.Bits())
				}
				if c.Val != logic.Lo && c.Val != logic.Hi {
					t.Fatalf("constraint %d: non-binary val %v", i, c.Val)
				}
			case FactRange:
				if len(c.Bits) == 0 || len(c.Bits) > 64 {
					t.Fatalf("constraint %d: %d range bits", i, len(c.Bits))
				}
				for _, b := range c.Bits {
					if b < 0 || b >= sp.Bits() {
						t.Fatalf("constraint %d: range bit %d out of range", i, b)
					}
				}
			case FactRel:
				if c.A == c.B || c.A < 0 || c.A >= sp.Bits() || c.B < 0 || c.B >= sp.Bits() {
					t.Fatalf("constraint %d: bad relation %d vs %d", i, c.A, c.B)
				}
			default:
				t.Fatalf("constraint %d: unknown kind %v", i, c.Kind)
			}
		}
		// Anything the parser accepts must construct cleanly or fail with
		// a diagnosable error (e.g. min > max), never panic.
		if _, err := NewConstrained(sp.Bits(), cons); err != nil && err.Error() == "" {
			t.Fatal("empty NewConstrained error")
		}
	})
}
