package csm

import (
	"strings"
	"testing"

	"symsim/internal/logic"
)

// FuzzParseConstraints drives the §3.3 constraint-text parser with
// arbitrary input. The contract under fuzz: never panic, reject with a
// non-empty error or accept, and every accepted constraint is fully
// resolved — a bit index the spec knows and a two-valued pin value. The
// parser feeds NewConstrained directly, so an out-of-range Bit here would
// corrupt the CSM state mask downstream.
func FuzzParseConstraints(f *testing.F) {
	f.Add("pc=0x14 bit=dff:pc[0] val=0\npc=* bit=dff:pc[1] val=1\n")
	f.Add("# comment only\n\n")
	f.Add("pc=0x14 bit=dff:pc[0] val=0 val=1\n")
	f.Add("pc=zz bit=dff:pc[0] val=0\n")
	f.Add("bit=dff:pc[0] val=1\n")
	f.Add("pc=* bit=mem:dmem[12].4 val=1\n")
	f.Add("pc=0xffffffffffffffff bit=dff:pc[1] val=1\r\n")
	f.Add("pc=* bit=dff:pc[1]")
	sp := constraintSpec(f)
	f.Fuzz(func(t *testing.T, text string) {
		cons, err := ParseConstraints(strings.NewReader(text), sp)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		for i, c := range cons {
			if c.Bit < 0 || c.Bit >= sp.Bits() {
				t.Fatalf("constraint %d: bit %d out of range [0,%d)", i, c.Bit, sp.Bits())
			}
			if c.Val != logic.Lo && c.Val != logic.Hi {
				t.Fatalf("constraint %d: non-binary val %v", i, c.Val)
			}
		}
	})
}
