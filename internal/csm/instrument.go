package csm

import (
	"symsim/internal/vvp"
)

// DecisionEvent describes the outcome of one Observe call for observers:
// the decision log entry behind `symsim explain` and the per-PC
// merge/skip metrics.
type DecisionEvent struct {
	// PC is the program counter the observed state is indexed by.
	PC uint64
	// Verdict is "subsumed" (covered by a stored state, path skipped),
	// "new" (stored as an additional conservative state) or "merged"
	// (absorbed into an existing state, producing a superstate).
	Verdict string
	// XGained is the number of known bits the merge turned unknown —
	// the over-approximation cost of this decision. Zero unless Verdict
	// is "merged".
	XGained int
	// States is the number of conservative states stored after the call.
	States int
}

// Decision verdict values.
const (
	VerdictSubsumed = "subsumed"
	VerdictNew      = "new"
	VerdictMerged   = "merged"
)

// instrumented wraps a Manager and reports every Observe outcome to a
// hook. It derives the verdict from the table size and the bit-count
// delta, so it works across all four policies without touching their
// internals; Name delegates, so checkpoint policy validation still sees
// the inner policy's identity.
//
// The verdict derivation reads States() around Observe, which is only
// meaningful when Observe calls are externally serialized — true in core,
// where classification runs under the scheduler lock (the same discipline
// that makes checkpoint cuts consistent).
type instrumented struct {
	inner Manager
	hook  func(DecisionEvent)
}

// Instrument wraps mgr so every Observe reports a DecisionEvent to hook.
// A nil hook returns mgr unchanged.
func Instrument(mgr Manager, hook func(DecisionEvent)) Manager {
	if hook == nil {
		return mgr
	}
	return &instrumented{inner: mgr, hook: hook}
}

func (i *instrumented) Name() string                     { return i.inner.Name() }
func (i *instrumented) States() int                      { return i.inner.States() }
func (i *instrumented) Export() []SavedState             { return i.inner.Export() }
func (i *instrumented) Import(states []SavedState) error { return i.inner.Import(states) }

func (i *instrumented) Observe(st vvp.State) Decision {
	before := i.inner.States()
	xBefore := st.Bits.CountX()
	d := i.inner.Observe(st)
	after := i.inner.States()

	ev := DecisionEvent{PC: st.PC, States: after}
	switch {
	case d.Subsumed:
		ev.Verdict = VerdictSubsumed
	case after > before:
		ev.Verdict = VerdictNew
	default:
		ev.Verdict = VerdictMerged
		// Remote decisions carry no Explore state (the authoritative
		// manager forked elsewhere); a zero-width vector would make the
		// delta a bogus negative.
		if d.Explore.Bits.Width() != 0 {
			ev.XGained = d.Explore.Bits.CountX() - xBefore
		}
	}
	i.hook(ev)
	return d
}
