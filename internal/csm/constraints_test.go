package csm

import (
	"strings"
	"testing"

	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/rtl"
	"symsim/internal/vvp"
)

// constraintSpec builds a tiny design with named flip-flops so labels
// resolve.
func constraintSpec(t testing.TB) *vvp.StateSpec {
	t.Helper()
	m := rtl.NewModule("cdes")
	d := rtl.Bus{m.N.AddNet("d0"), m.N.AddNet("d1")}
	q := m.Reg("pc", d, m.Hi(), 0)
	next := m.Inc(q)
	for i := range d {
		m.N.AddGate(netlist.KindBuf, d[i], next[i])
	}
	m.Output("pc", q)
	if err := m.N.Freeze(); err != nil {
		t.Fatal(err)
	}
	sp, err := vvp.SpecFor(m.N, "pc")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestParseConstraints(t *testing.T) {
	sp := constraintSpec(t)
	text := `
# pin the low PC bit at address 0x14
pc=0x14 bit=dff:pc[0] val=0
pc=* bit=dff:pc[1] val=1
`
	cons, err := ParseConstraints(strings.NewReader(text), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 2 {
		t.Fatalf("parsed %d constraints", len(cons))
	}
	if cons[0].PC != 0x14 || cons[0].AnyPC || cons[0].Val != logic.Lo {
		t.Errorf("first constraint: %+v", cons[0])
	}
	if !cons[1].AnyPC || cons[1].Val != logic.Hi {
		t.Errorf("second constraint: %+v", cons[1])
	}
}

func TestParseConstraintsErrors(t *testing.T) {
	sp := constraintSpec(t)
	for _, bad := range []string{
		"pc=0x14 bit=dff:pc[0]",         // missing val
		"pc=zz bit=dff:pc[0] val=0",     // bad pc
		"pc=* bit=dff:nothere val=0",    // unknown bit
		"pc=* bit=dff:pc[0] val=x",      // bad value
		"pc=* pc=1 bit=dff:pc[0] val=0", // duplicate field
		"pc=* bit=dff:pc[0] val=0 hm=1", // unknown field
		"malformed",                     // no '='
	} {
		if _, err := ParseConstraints(strings.NewReader(bad), sp); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
