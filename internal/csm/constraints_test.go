package csm

import (
	"strings"
	"testing"

	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/rtl"
	"symsim/internal/vvp"
)

// constraintSpec builds a tiny design with named flip-flops so labels
// resolve.
func constraintSpec(t testing.TB) *vvp.StateSpec {
	t.Helper()
	m := rtl.NewModule("cdes")
	d := rtl.Bus{m.N.AddNet("d0"), m.N.AddNet("d1")}
	q := m.Reg("pc", d, m.Hi(), 0)
	next := m.Inc(q)
	for i := range d {
		m.N.AddGate(netlist.KindBuf, d[i], next[i])
	}
	m.Output("pc", q)
	if err := m.N.Freeze(); err != nil {
		t.Fatal(err)
	}
	sp, err := vvp.SpecFor(m.N, "pc")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestParseConstraints(t *testing.T) {
	sp := constraintSpec(t)
	text := `
# pin the low PC bit at address 0x14
pc=0x14 bit=dff:pc[0] val=0
pc=* bit=dff:pc[1] val=1
`
	cons, err := ParseConstraints(strings.NewReader(text), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 2 {
		t.Fatalf("parsed %d constraints", len(cons))
	}
	if cons[0].PC != 0x14 || cons[0].AnyPC || cons[0].Val != logic.Lo {
		t.Errorf("first constraint: %+v", cons[0])
	}
	if !cons[1].AnyPC || cons[1].Val != logic.Hi {
		t.Errorf("second constraint: %+v", cons[1])
	}
}

func TestParseConstraintsErrors(t *testing.T) {
	sp := constraintSpec(t)
	for _, bad := range []string{
		"pc=0x14 bit=dff:pc[0]",                       // missing val
		"pc=zz bit=dff:pc[0] val=0",                   // bad pc
		"pc=* bit=dff:nothere val=0",                  // unknown bit
		"pc=* bit=dff:pc[0] val=x",                    // bad value
		"pc=* pc=1 bit=dff:pc[0] val=0",               // duplicate field
		"pc=* bit=dff:pc[0] val=0 hm=1",               // unknown field
		"malformed",                                   // no '='
		"pc=*",                                        // no fact form at all
		"pc=* reg=pc min=0x0",                         // range fact missing max
		"pc=* reg=nothere min=0 max=1",                // unknown register
		"pc=* reg=pc min=zz max=1",                    // bad min
		"pc=* rel=dff:pc[0]",                          // no relation operator
		"pc=* rel=dff:pc[0]==dff:nope",                // unknown rel operand
		"pc=* rel=dff:pc[0]!=dff:pc[0]",               // self-relation
		"pc=* bit=dff:pc[0] val=0 reg=pc min=0 max=1", // two fact forms
	} {
		if _, err := ParseConstraints(strings.NewReader(bad), sp); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// Regression: the 0x prefix strip was case-sensitive, so "pc=0X1A" was
// rejected while "pc=0x1a" parsed. Both casings (and bare hex) must work.
func TestParseConstraintsHexPrefixCaseInsensitive(t *testing.T) {
	sp := constraintSpec(t)
	for _, text := range []string{
		"pc=0X1A bit=dff:pc[0] val=0\n",
		"pc=0x1A bit=dff:pc[0] val=0\n",
		"pc=1A bit=dff:pc[0] val=0\n",
	} {
		cons, err := ParseConstraints(strings.NewReader(text), sp)
		if err != nil {
			t.Fatalf("%q rejected: %v", text, err)
		}
		if len(cons) != 1 || cons[0].PC != 0x1A {
			t.Fatalf("%q parsed to %+v", text, cons)
		}
	}
}

// Regression: lines beyond bufio.Scanner's default 64 KiB buffer failed
// with an opaque "token too long". Long-but-legal lines must parse, and
// lines beyond the 1 MiB cap must fail with a line number.
func TestParseConstraintsLongLines(t *testing.T) {
	sp := constraintSpec(t)
	long := "# " + strings.Repeat("a", 100*1024) + "\npc=0x14 bit=dff:pc[0] val=0\n"
	cons, err := ParseConstraints(strings.NewReader(long), sp)
	if err != nil {
		t.Fatalf("100 KiB comment rejected: %v", err)
	}
	if len(cons) != 1 {
		t.Fatalf("parsed %d constraints", len(cons))
	}

	huge := "# " + strings.Repeat("a", maxConstraintLine+1)
	_, err = ParseConstraints(strings.NewReader(huge), sp)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("over-long line error = %v, want line-numbered failure", err)
	}
}

func TestParseConstraintsRangeAndRel(t *testing.T) {
	sp := constraintSpec(t)
	cons, err := ParseConstraints(strings.NewReader(`
pc=0x14 reg=pc min=0x1 max=0X3
pc=* rel=dff:pc[0]!=dff:pc[1]
pc=2 rel=dff:pc[0]==dff:pc[1]
`), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 3 {
		t.Fatalf("parsed %d constraints", len(cons))
	}
	r := cons[0]
	if r.Kind != FactRange || r.PC != 0x14 || len(r.Bits) != 2 || r.Min != 1 || r.Max != 3 {
		t.Errorf("range fact: %+v", r)
	}
	if cons[1].Kind != FactRel || !cons[1].AnyPC || cons[1].Eq {
		t.Errorf("!= fact: %+v", cons[1])
	}
	if cons[2].Kind != FactRel || !cons[2].Eq || cons[2].A == cons[2].B {
		t.Errorf("== fact: %+v", cons[2])
	}
}

func TestFactsFeasibleAndApply(t *testing.T) {
	// 4-bit state; register value bits LSB-first are {0,1}.
	facts, err := NewFacts(4, []Constraint{
		{PC: 1, Bit: 3, Val: logic.Hi},
		{Kind: FactRange, PC: 2, Bits: []int{0, 1}, Min: 2, Max: 3},
		{Kind: FactRel, PC: 3, A: 0, B: 1, Eq: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	feasible := func(pc uint64, bits string) bool {
		return facts.Feasible(vvp.State{PC: pc, Bits: logic.MustVec(bits), PCKnown: true})
	}
	// Pin: bit 3 must be 1 at PC 1; X never disproves.
	if feasible(1, "0xxx") {
		t.Error("pin-violating state feasible")
	}
	if !feasible(1, "xxxx") || !feasible(1, "1xxx") || !feasible(9, "0xxx") {
		t.Error("pin-consistent state infeasible")
	}
	// Range: value(bits 1,0 as {0,1} LSB-first) must be in [2,3] at PC 2,
	// i.e. bit 1 must be able to be 1.
	if feasible(2, "xx0x") {
		t.Error("range-violating state feasible (value <= 1)")
	}
	if !feasible(2, "xx1x") || !feasible(2, "xxxx") {
		t.Error("range-consistent state infeasible")
	}
	// Rel: bits 0 and 1 must differ at PC 3.
	if feasible(3, "xx11") || feasible(3, "xx00") {
		t.Error("rel-violating state feasible")
	}
	if !feasible(3, "xx10") || !feasible(3, "xxx1") {
		t.Error("rel-consistent state infeasible")
	}

	// Apply trims X bits: the range pins its agreed prefix (bit 1 -> 1),
	// the relation propagates a known bit to its X partner.
	v := logic.MustVec("xxxx")
	facts.Apply(2, v)
	if got := v.String(); got != "xx1x" {
		t.Errorf("range apply = %s, want xx1x", got)
	}
	v = logic.MustVec("xxx1")
	facts.Apply(3, v)
	if got := v.String(); got != "xx01" {
		t.Errorf("rel apply = %s, want xx01", got)
	}
	// Pin overwrite (the historical §3.3 trim semantic).
	v = logic.MustVec("0000")
	facts.Apply(1, v)
	if got := v.String(); got != "1000" {
		t.Errorf("pin apply = %s, want 1000", got)
	}
}
