package csm

import (
	"testing"
)

// collectEvents wraps a policy and runs the canonical observe sequence
// new → subsumed → merged against it, returning the recorded events.
func collectEvents(t *testing.T, mgr Manager) []DecisionEvent {
	t.Helper()
	var evs []DecisionEvent
	im := Instrument(mgr, func(ev DecisionEvent) { evs = append(evs, ev) })
	if im.Name() != mgr.Name() {
		t.Fatalf("Name() = %q, want delegation to %q", im.Name(), mgr.Name())
	}
	im.Observe(st(0x10, "0101")) // first arrival: new
	im.Observe(st(0x10, "0101")) // identical: subsumed
	im.Observe(st(0x10, "0111")) // differs in one bit
	return evs
}

func TestInstrumentVerdictsMergeAll(t *testing.T) {
	evs := collectEvents(t, NewMergeAll())
	want := []string{VerdictNew, VerdictSubsumed, VerdictMerged}
	if len(evs) != len(want) {
		t.Fatalf("events = %+v", evs)
	}
	for i, w := range want {
		if evs[i].Verdict != w {
			t.Errorf("event %d verdict = %q, want %q", i, evs[i].Verdict, w)
		}
		if evs[i].PC != 0x10 {
			t.Errorf("event %d pc = %#x", i, evs[i].PC)
		}
	}
	// "0101" merge "0111" = "01x1": one known bit became X.
	if evs[2].XGained != 1 {
		t.Errorf("merged xGained = %d, want 1", evs[2].XGained)
	}
	if evs[0].States != 1 || evs[2].States != 1 {
		t.Errorf("states = %d,%d, want 1,1", evs[0].States, evs[2].States)
	}
}

func TestInstrumentVerdictsExact(t *testing.T) {
	evs := collectEvents(t, NewExact(0))
	// Exact never merges: the differing state is stored as new.
	want := []string{VerdictNew, VerdictSubsumed, VerdictNew}
	for i, w := range want {
		if evs[i].Verdict != w {
			t.Errorf("event %d verdict = %q, want %q", i, evs[i].Verdict, w)
		}
	}
	if evs[2].States != 2 {
		t.Errorf("states after second new = %d, want 2", evs[2].States)
	}
}

func TestInstrumentVerdictsClustered(t *testing.T) {
	evs := collectEvents(t, NewClustered(1))
	// k=1 degenerates to merge-all.
	want := []string{VerdictNew, VerdictSubsumed, VerdictMerged}
	for i, w := range want {
		if evs[i].Verdict != w {
			t.Errorf("event %d verdict = %q, want %q", i, evs[i].Verdict, w)
		}
	}
	if evs[2].XGained != 1 {
		t.Errorf("merged xGained = %d, want 1", evs[2].XGained)
	}
}

func TestInstrumentVerdictsConstrained(t *testing.T) {
	evs := collectEvents(t, mustConstrained(t, 4, nil))
	want := []string{VerdictNew, VerdictSubsumed, VerdictMerged}
	for i, w := range want {
		if evs[i].Verdict != w {
			t.Errorf("event %d verdict = %q, want %q", i, evs[i].Verdict, w)
		}
	}
}

func TestInstrumentNilHook(t *testing.T) {
	m := NewMergeAll()
	if Instrument(m, nil) != m {
		t.Fatal("nil hook must return the manager unchanged")
	}
}

func TestInstrumentDelegatesExportImport(t *testing.T) {
	im := Instrument(NewMergeAll(), func(DecisionEvent) {})
	im.Observe(st(0x10, "0101"))
	exp := im.Export()
	if len(exp) != 1 {
		t.Fatalf("export = %+v", exp)
	}
	other := Instrument(NewMergeAll(), func(DecisionEvent) {})
	if err := other.Import(exp); err != nil {
		t.Fatal(err)
	}
	if other.States() != 1 {
		t.Fatalf("states after import = %d", other.States())
	}
}
