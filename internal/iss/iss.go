// Package iss provides instruction-set simulators (golden models) for the
// three evaluation ISAs. They interpret the same binary images the
// gate-level cores execute and are used for co-simulation: random programs
// run on both the interpreter and the gate-level netlist, and the
// architectural state must match cycle-for-instruction. This is the
// reference-model verification layer that gives the co-analysis results
// their credibility — if the cores were wrong, the symbolic dichotomy
// would be wrong too.
package iss

import "fmt"

// State is the architectural state common to the three machines: a
// register file, a program counter, data memory and a halted flag.
// Register and memory widths are ISA-specific (the MSP430 uses 16-bit
// words; values are stored masked).
type State struct {
	PC     uint32
	Regs   []uint32
	Mem    []uint32 // data memory, word-addressed
	Halted bool

	// Flags are the MSP430 status bits (unused by the other ISAs).
	FlagN, FlagZ, FlagC, FlagV bool

	// HI and LO are the bm32 multiplier result registers.
	HI, LO uint32
}

// Model is one instruction-set simulator.
type Model interface {
	// Reset initializes the architectural state for the loaded program.
	Reset()
	// Step executes one instruction; it returns an error on an encoding
	// the subset does not implement.
	Step() error
	// State exposes the architectural state for comparison.
	State() *State
}

// Run steps the model until it halts or maxInstrs instructions execute.
func Run(m Model, maxInstrs int) error {
	m.Reset()
	for i := 0; i < maxInstrs; i++ {
		if m.State().Halted {
			return nil
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	if !m.State().Halted {
		return fmt.Errorf("iss: no halt within %d instructions", maxInstrs)
	}
	return nil
}
