package iss_test

import (
	"testing"

	"symsim/internal/isa/mips"
	"symsim/internal/isa/msp430"
	"symsim/internal/isa/rv32"
	"symsim/internal/iss"
	"symsim/internal/logic"
)

func runRV32(t *testing.T, build func(a *rv32.Asm)) *iss.State {
	t.Helper()
	a := rv32.NewAsm()
	build(a)
	m := iss.NewRV32(a.MustAssemble())
	if err := iss.Run(m, 10000); err != nil {
		t.Fatal(err)
	}
	return m.State()
}

func TestRV32SignedArith(t *testing.T) {
	st := runRV32(t, func(a *rv32.Asm) {
		a.LI(rv32.T0, -8)
		a.SRAI(rv32.T1, rv32.T0, 2) // -2
		a.SRLI(rv32.T2, rv32.T0, 28)
		a.SLT(rv32.A0, rv32.T0, rv32.X0)  // -8 < 0 signed
		a.SLTU(rv32.A1, rv32.T0, rv32.X0) // unsigned: huge, not < 0
		a.Halt()
	})
	if st.Regs[rv32.T1] != 0xFFFFFFFE {
		t.Errorf("srai = %#x", st.Regs[rv32.T1])
	}
	if st.Regs[rv32.T2] != 0xF {
		t.Errorf("srli = %#x", st.Regs[rv32.T2])
	}
	if st.Regs[rv32.A0] != 1 || st.Regs[rv32.A1] != 0 {
		t.Errorf("slt/sltu = %d/%d", st.Regs[rv32.A0], st.Regs[rv32.A1])
	}
}

func TestRV32X0Immutable(t *testing.T) {
	st := runRV32(t, func(a *rv32.Asm) {
		a.ADDI(rv32.X0, rv32.X0, 99)
		a.Halt()
	})
	if st.Regs[0] != 0 {
		t.Errorf("x0 = %d", st.Regs[0])
	}
}

func TestRV32UnsupportedOpcode(t *testing.T) {
	a := rv32.NewAsm()
	a.Halt()
	m := iss.NewRV32(a.MustAssemble())
	m.Reset()
	m.State().PC = 0
	// Overwrite with a FENCE-class opcode the subset rejects: craft via a
	// direct image.
	b := rv32.NewAsm()
	b.NOP()
	img := b.MustAssemble()
	img.ROM[0] = vec32(0x0000000F) // FENCE
	m2 := iss.NewRV32(img)
	m2.Reset()
	if err := m2.Step(); err == nil {
		t.Fatal("unsupported opcode accepted")
	}
}

func runMSP(t *testing.T, build func(a *msp430.Asm)) *iss.State {
	t.Helper()
	a := msp430.NewAsm()
	build(a)
	m := iss.NewMSP430(a.MustAssemble())
	if err := iss.Run(m, 10000); err != nil {
		t.Fatal(err)
	}
	return m.State()
}

func TestMSP430CarryAndOverflow(t *testing.T) {
	st := runMSP(t, func(a *msp430.Asm) {
		a.MOVI(0x7FFF, msp430.R4)
		a.ADDI(1, msp430.R4) // 0x8000: V=1, N=1, C=0
		a.Halt()
	})
	if !st.FlagV || !st.FlagN || st.FlagC || st.FlagZ {
		t.Errorf("flags after 0x7FFF+1: N=%v Z=%v C=%v V=%v", st.FlagN, st.FlagZ, st.FlagC, st.FlagV)
	}
	st = runMSP(t, func(a *msp430.Asm) {
		a.MOVI(-1, msp430.R4)
		a.ADDI(1, msp430.R4) // 0: C=1, Z=1
		a.Halt()
	})
	if !st.FlagC || !st.FlagZ || st.FlagN || st.FlagV {
		t.Errorf("flags after 0xFFFF+1: N=%v Z=%v C=%v V=%v", st.FlagN, st.FlagZ, st.FlagC, st.FlagV)
	}
}

func TestMSP430SubBorrowSemantics(t *testing.T) {
	// MSP430 C is "no borrow": 5-3 sets C; 3-5 clears it.
	st := runMSP(t, func(a *msp430.Asm) {
		a.MOVI(5, msp430.R4)
		a.CMPI(3, msp430.R4)
		a.Halt()
	})
	if !st.FlagC || st.FlagZ {
		t.Errorf("5-3: C=%v Z=%v", st.FlagC, st.FlagZ)
	}
	st = runMSP(t, func(a *msp430.Asm) {
		a.MOVI(3, msp430.R4)
		a.CMPI(5, msp430.R4)
		a.Halt()
	})
	if st.FlagC || !st.FlagN {
		t.Errorf("3-5: C=%v N=%v", st.FlagC, st.FlagN)
	}
}

func TestMSP430RRCUsesCarry(t *testing.T) {
	st := runMSP(t, func(a *msp430.Asm) {
		a.MOVI(5, msp430.R4)
		a.CMPI(3, msp430.R4) // set carry
		a.MOVI(2, msp430.R5)
		a.RRC(msp430.R5) // 0x8001
		a.Halt()
	})
	if st.Regs[msp430.R5] != 0x8001 {
		t.Errorf("rrc = %#x", st.Regs[msp430.R5])
	}
	if st.FlagC { // shifted-out LSB of 2 is 0
		t.Error("rrc carry should be 0")
	}
}

func TestMSP430MultiplierPeripheral(t *testing.T) {
	st := runMSP(t, func(a *msp430.Asm) {
		a.MOVI(300, msp430.R4)
		a.StoreAbs(msp430.R4, msp430.AddrMPY)
		a.MOVI(1000, msp430.R5)
		a.StoreAbs(msp430.R5, msp430.AddrOP2)
		a.LoadAbs(msp430.AddrRESLO, msp430.R6)
		a.LoadAbs(msp430.AddrRESHI, msp430.R7)
		a.Halt()
	})
	prod := uint32(300 * 1000)
	if st.Regs[msp430.R6] != uint32(uint16(prod)) || st.Regs[msp430.R7] != prod>>16 {
		t.Errorf("multiplier: lo=%#x hi=%#x", st.Regs[msp430.R6], st.Regs[msp430.R7])
	}
}

func TestMIPSBasics(t *testing.T) {
	a := mips.NewAsm()
	a.LI(mips.T0, -1)
	a.SRL(mips.T1, mips.T0, 28) // 0xF
	a.SRA(mips.T2, mips.T0, 28) // -1
	a.NOR(mips.T3, mips.T0, mips.ZERO)
	a.LUI(mips.T4, 0x8000)
	a.Halt()
	m := iss.NewMIPS(a.MustAssemble())
	if err := iss.Run(m, 1000); err != nil {
		t.Fatal(err)
	}
	st := m.State()
	if st.Regs[mips.T1] != 0xF || st.Regs[mips.T2] != 0xFFFFFFFF {
		t.Errorf("srl/sra = %#x/%#x", st.Regs[mips.T1], st.Regs[mips.T2])
	}
	if st.Regs[mips.T3] != 0 {
		t.Errorf("nor(-1, 0) = %#x", st.Regs[mips.T3])
	}
	if st.Regs[mips.T4] != 0x80000000 {
		t.Errorf("lui = %#x", st.Regs[mips.T4])
	}
}

func TestRunReportsNoHalt(t *testing.T) {
	a := rv32.NewAsm()
	a.Label("spin")
	a.ADDI(rv32.T0, rv32.T0, 1)
	a.JAL(rv32.X0, "spin2")
	a.Label("spin2")
	a.JAL(rv32.X0, "spin")
	m := iss.NewRV32(a.MustAssemble())
	if err := iss.Run(m, 100); err == nil {
		t.Fatal("non-terminating program reported success")
	}
}

// vec32 builds a known 32-bit vector (test helper).
func vec32(v uint32) logicVec { return logic.NewVecUint64(32, uint64(v)) }

type logicVec = logic.Vec
