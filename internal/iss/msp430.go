package iss

import (
	"fmt"

	"symsim/internal/isa"
	"symsim/internal/isa/msp430"
)

// MSP430 interprets the openMSP430 subset, matching the gate-level core in
// internal/cpu/omsp430: Format I with register/indexed/immediate source
// and register/indexed destination modes (at most one extension word),
// Format II register/indexed, flag-resolved jumps, the hardware
// multiplier peripheral, and the JMP-minus-one terminating condition.
// Cycle-counting peripherals (watchdog counter, TimerA) are not modelled:
// their readback is timing-dependent, so co-simulation programs must not
// read them.
type MSP430 struct {
	rom  []uint16
	st   State
	init map[int]uint16

	mpy, op2 uint16
	wdtctl   uint16
	tactl    uint16
	taccr0   uint16
	p1out    uint16
	p1dir    uint16
}

// NewMSP430 builds an interpreter for the image.
func NewMSP430(img *isa.Image) *MSP430 {
	m := &MSP430{init: map[int]uint16{}}
	for _, w := range img.ROM {
		v, _ := w.Uint64()
		m.rom = append(m.rom, uint16(v))
	}
	for idx, v := range img.Data {
		if u, ok := v.Uint64(); ok {
			m.init[idx] = uint16(u)
		}
	}
	return m
}

// State exposes the architectural state. Register and memory words hold
// 16-bit values zero-extended into the uint32 slots.
func (m *MSP430) State() *State { return &m.st }

// Reset re-initializes registers, memory, peripherals and the PC.
func (m *MSP430) Reset() {
	m.st = State{Regs: make([]uint32, 16), Mem: make([]uint32, 256)}
	m.mpy, m.op2, m.wdtctl, m.tactl, m.taccr0, m.p1out, m.p1dir = 0, 0, 0, 0, 0, 0, 0
	for idx, v := range m.init {
		if idx >= 0 && idx < len(m.st.Mem) {
			m.st.Mem[idx] = uint32(v)
		}
	}
}

// read implements the data-space read mux of the core: exact MMIO
// addresses first, then the (aliasing) RAM read.
func (m *MSP430) read(addr uint16) uint16 {
	switch int32(addr) {
	case msp430.AddrP1OUT:
		return m.p1out
	case msp430.AddrP1DIR:
		return m.p1dir
	case msp430.AddrWDTCTL:
		return m.wdtctl
	case msp430.AddrMPY:
		return m.mpy
	case msp430.AddrOP2:
		return m.op2
	case msp430.AddrRESLO:
		return uint16(uint32(m.mpy) * uint32(m.op2))
	case msp430.AddrRESHI:
		return uint16(uint32(m.mpy) * uint32(m.op2) >> 16)
	case msp430.AddrTACTL:
		return m.tactl
	case msp430.AddrTACCR0:
		return m.taccr0
	}
	return uint16(m.st.Mem[int(addr>>1)&0xFF])
}

// write implements the data-space write decode: exact MMIO strobes plus
// the range-checked RAM write.
func (m *MSP430) write(addr, v uint16) {
	switch int32(addr) {
	case msp430.AddrP1OUT:
		m.p1out = v & 0xFF
		return
	case msp430.AddrP1DIR:
		m.p1dir = v & 0xFF
		return
	case msp430.AddrWDTCTL:
		m.wdtctl = v
		return
	case msp430.AddrMPY:
		m.mpy = v
		return
	case msp430.AddrOP2:
		m.op2 = v
		return
	case msp430.AddrTACTL:
		m.tactl = v
		return
	case msp430.AddrTACCR0:
		m.taccr0 = v
		return
	}
	// RAM: bit 9 set, bits 15:10 clear (the core's isRAM decode).
	if addr&0x0200 != 0 && addr&0xFC00 == 0 {
		m.st.Mem[int(addr>>1)&0xFF] = uint32(v)
	}
}

func (m *MSP430) reg(i int) uint16       { return uint16(m.st.Regs[i&0xF]) }
func (m *MSP430) setReg(i int, v uint16) { m.st.Regs[i&0xF] = uint32(v) }

// Step executes one instruction.
func (m *MSP430) Step() error {
	pc := uint16(m.st.PC)
	fetch := func() (uint16, error) {
		idx := int(pc>>1) & 0x3FF
		if idx >= len(m.rom) {
			return 0, fmt.Errorf("iss/msp430: fetch past program end at pc=%#x", pc)
		}
		w := m.rom[idx]
		pc += 2
		return w, nil
	}
	w, err := fetch()
	if err != nil {
		return err
	}

	// Jumps.
	if w&0xE000 == 0x2000 {
		cond := int(w >> 10 & 7)
		off := int16(w<<6) >> 6 // 10-bit signed word offset
		taken := false
		switch cond {
		case msp430.CondJNE:
			taken = !m.st.FlagZ
		case msp430.CondJEQ:
			taken = m.st.FlagZ
		case msp430.CondJNC:
			taken = !m.st.FlagC
		case msp430.CondJC:
			taken = m.st.FlagC
		case msp430.CondJN:
			taken = m.st.FlagN
		case msp430.CondJGE:
			taken = m.st.FlagN == m.st.FlagV
		case msp430.CondJL:
			taken = m.st.FlagN != m.st.FlagV
		case msp430.CondJMP:
			taken = true
		}
		if taken {
			if w&0x3FF == 0x3FF { // offset -1: jump to self
				m.st.Halted = true
			}
			pc = uint16(int32(pc) + int32(off)*2)
		}
		m.st.PC = uint32(pc)
		return nil
	}

	// Format II.
	if w&0xFC00 == 0x1000 {
		op2 := int(w >> 7 & 7)
		as := int(w >> 4 & 3)
		dst := int(w & 0xF)
		var val uint16
		var memAddr uint16
		fromMem := false
		switch as {
		case 0:
			val = m.reg(dst)
		case 1:
			ext, err := fetch()
			if err != nil {
				return err
			}
			memAddr = m.reg(dst) + ext
			val = m.read(memAddr)
			fromMem = true
		default:
			return fmt.Errorf("iss/msp430: format II As=%d unsupported", as)
		}
		var res uint16
		switch op2 {
		case msp430.Op2RRC:
			res = val >> 1
			if m.st.FlagC {
				res |= 0x8000
			}
			m.setFlagsShift(res, val)
		case msp430.Op2SWPB:
			res = val<<8 | val>>8
		case msp430.Op2RRA:
			res = uint16(int16(val) >> 1)
			m.setFlagsShift(res, val)
		case msp430.Op2SXT:
			res = uint16(int16(int8(val)))
			m.setFlagsLogical(res)
		default:
			return fmt.Errorf("iss/msp430: format II op %d unsupported", op2)
		}
		if fromMem {
			m.write(memAddr, res)
		} else {
			m.setReg(dst, res)
		}
		m.st.PC = uint32(pc)
		return nil
	}

	// Format I.
	op := int(w >> 12)
	if op < 4 {
		return fmt.Errorf("iss/msp430: opcode %#x unsupported", op)
	}
	src := int(w >> 8 & 0xF)
	ad := int(w >> 7 & 1)
	as := int(w >> 4 & 3)
	dst := int(w & 0xF)

	var ext uint16
	needExt := as == 1 || as == 3 || ad == 1
	if needExt {
		if ext, err = fetch(); err != nil {
			return err
		}
	}
	if (as == 1 || as == 3) && ad == 1 {
		return fmt.Errorf("iss/msp430: two extension words not supported")
	}

	var srcVal uint16
	switch as {
	case 0:
		srcVal = m.reg(src)
	case 1:
		srcVal = m.read(m.reg(src) + ext)
	case 3:
		srcVal = ext // #imm (src = R0)
	default:
		return fmt.Errorf("iss/msp430: As=%d unsupported", as)
	}
	var dstAddr uint16
	var dstVal uint16
	if ad == 1 {
		dstAddr = m.reg(dst) + ext
		dstVal = m.read(dstAddr)
	} else {
		dstVal = m.reg(dst)
	}

	res, write := m.fmt1(op, srcVal, dstVal)
	if write {
		if ad == 1 {
			m.write(dstAddr, res)
		} else {
			m.setReg(dst, res)
		}
	}
	m.st.PC = uint32(pc)
	return nil
}

// fmt1 computes a two-operand result and updates flags exactly as the
// gate-level ALU does.
func (m *MSP430) fmt1(op int, src, dst uint16) (res uint16, write bool) {
	addFlags := func(a, b uint16, cin uint32) uint16 {
		sum := uint32(a) + uint32(b) + cin
		r := uint16(sum)
		m.st.FlagN = r&0x8000 != 0
		m.st.FlagZ = r == 0
		m.st.FlagC = sum > 0xFFFF
		m.st.FlagV = (a&0x8000 == b&0x8000) && (r&0x8000 != a&0x8000)
		return r
	}
	cBit := uint32(0)
	if m.st.FlagC {
		cBit = 1
	}
	switch op {
	case msp430.OpMOV:
		return src, true
	case msp430.OpADD:
		return addFlags(dst, src, 0), true
	case msp430.OpADDC:
		return addFlags(dst, src, cBit), true
	case msp430.OpSUB:
		return addFlags(dst, ^src, 1), true
	case msp430.OpSUBC:
		return addFlags(dst, ^src, cBit), true
	case msp430.OpCMP:
		addFlags(dst, ^src, 1)
		return 0, false
	case msp430.OpDADD:
		return addFlags(dst, src, 0), true // binary add, as in the core
	case msp430.OpBIT:
		m.setFlagsLogical(dst & src)
		return 0, false
	case msp430.OpBIC:
		return dst &^ src, true
	case msp430.OpBIS:
		return dst | src, true
	case msp430.OpXOR:
		r := dst ^ src
		m.setFlagsLogical(r)
		return r, true
	case msp430.OpAND:
		r := dst & src
		m.setFlagsLogical(r)
		return r, true
	}
	return 0, false
}

func (m *MSP430) setFlagsLogical(r uint16) {
	m.st.FlagN = r&0x8000 != 0
	m.st.FlagZ = r == 0
	m.st.FlagC = r != 0 // C = ~Z
	m.st.FlagV = false
}

func (m *MSP430) setFlagsShift(r, orig uint16) {
	m.st.FlagN = r&0x8000 != 0
	m.st.FlagZ = r == 0
	m.st.FlagC = orig&1 != 0
	m.st.FlagV = false
}
