package iss

import (
	"fmt"

	"symsim/internal/isa"
)

// RV32 interprets the dr5 subset of RV32E, bit-for-bit matching the
// gate-level core in internal/cpu/dr5 (including its documented
// idiosyncrasies: 16-bit PC arithmetic, 4-bit register fields, JALR
// without LSB clearing, and the taken-self-jump terminating condition).
type RV32 struct {
	rom []uint32
	st  State
	// RAMWords mirrors the core's data memory size (256 words, index
	// wraps modulo the size).
	init map[int]uint32
}

// NewRV32 builds an interpreter for the image. Known data words initialize
// memory; everything else is zero (co-simulation programs must write
// before reading anything they did not initialize).
func NewRV32(img *isa.Image) *RV32 {
	m := &RV32{init: map[int]uint32{}}
	for _, w := range img.ROM {
		v, _ := w.Uint64()
		m.rom = append(m.rom, uint32(v))
	}
	for idx, v := range img.Data {
		u, ok := v.Uint64()
		if ok {
			m.init[idx] = uint32(u)
		}
	}
	return m
}

// State exposes the architectural state.
func (m *RV32) State() *State { return &m.st }

// Reset re-initializes registers, memory and the PC.
func (m *RV32) Reset() {
	m.st = State{Regs: make([]uint32, 16), Mem: make([]uint32, 256)}
	for idx, v := range m.init {
		if idx >= 0 && idx < len(m.st.Mem) {
			m.st.Mem[idx] = v
		}
	}
}

func (m *RV32) fetch() (uint32, error) {
	idx := int(m.st.PC>>2) & 0x3FF
	if idx >= len(m.rom) {
		return 0, fmt.Errorf("iss/rv32: fetch past program end at pc=%#x", m.st.PC)
	}
	return m.rom[idx], nil
}

func (m *RV32) reg(i uint32) uint32 {
	return m.st.Regs[i&0xF]
}

func (m *RV32) setReg(i, v uint32) {
	if i&0xF != 0 {
		m.st.Regs[i&0xF] = v
	}
}

// Step executes one instruction.
func (m *RV32) Step() error {
	w, err := m.fetch()
	if err != nil {
		return err
	}
	opcode := w & 0x7F
	rd := w >> 7 & 0xF
	funct3 := w >> 12 & 0x7
	rs1 := w >> 15 & 0xF
	rs2 := w >> 20 & 0xF
	f7b5 := w >> 30 & 1

	immI := uint32(int32(w) >> 20)
	immS := uint32(int32(w)>>25<<5) | w>>7&0x1F
	rawB := w>>31&1<<12 | w>>7&1<<11 | w>>25&0x3F<<5 | w>>8&0xF<<1
	immB := uint32(int32(rawB<<19) >> 19)
	rawJ := w>>31&1<<20 | w>>12&0xFF<<12 | w>>20&1<<11 | w>>21&0x3FF<<1
	immJ := uint32(int32(rawJ<<11) >> 11)

	pc := m.st.PC & 0xFFFF
	pc4 := (pc + 4) & 0xFFFF
	next := pc4

	a := m.reg(rs1)
	b := m.reg(rs2)

	alu := func(bop uint32, sub bool) uint32 {
		switch funct3 {
		case 0:
			if sub {
				return a - bop
			}
			return a + bop
		case 1:
			return a << (shamt(w, b, opcode) & 31)
		case 2:
			if int32(a) < int32(bop) {
				return 1
			}
			return 0
		case 3:
			if a < bop {
				return 1
			}
			return 0
		case 4:
			return a ^ bop
		case 5:
			sh := shamt(w, b, opcode) & 31
			if f7b5 == 1 {
				return uint32(int32(a) >> sh)
			}
			return a >> sh
		case 6:
			return a | bop
		case 7:
			return a & bop
		}
		return 0
	}

	switch opcode {
	case 0b0110111: // LUI
		m.setReg(rd, w&0xFFFFF000)
	case 0b0010011: // ALU immediate
		m.setReg(rd, alu(immI, false))
	case 0b0110011: // ALU register
		m.setReg(rd, alu(b, f7b5 == 1 && funct3 == 0))
	case 0b0000011: // LW
		if funct3 != 2 {
			return fmt.Errorf("iss/rv32: unsupported load funct3=%d", funct3)
		}
		addr := a + immI
		m.setReg(rd, m.st.Mem[int(addr>>2)&0xFF])
	case 0b0100011: // SW
		if funct3 != 2 {
			return fmt.Errorf("iss/rv32: unsupported store funct3=%d", funct3)
		}
		addr := a + immS
		m.st.Mem[int(addr>>2)&0xFF] = b
	case 0b1100011: // branches
		var taken bool
		switch funct3 {
		case 0:
			taken = a == b
		case 1:
			taken = a != b
		case 4:
			taken = int32(a) < int32(b)
		case 5:
			taken = int32(a) >= int32(b)
		case 6:
			taken = a < b
		case 7:
			taken = a >= b
		default:
			return fmt.Errorf("iss/rv32: bad branch funct3=%d", funct3)
		}
		if taken {
			target := (pc + immB) & 0xFFFF
			if target == pc {
				m.st.Halted = true
			}
			next = target
		}
	case 0b1101111: // JAL
		target := (pc + immJ) & 0xFFFF
		m.setReg(rd, pc4)
		if target == pc {
			m.st.Halted = true
		}
		next = target
	case 0b1100111: // JALR (the core does not clear the LSB)
		target := (a + immI) & 0xFFFF
		m.setReg(rd, pc4)
		if target == pc {
			m.st.Halted = true
		}
		next = target
	default:
		return fmt.Errorf("iss/rv32: unsupported opcode %#x", opcode)
	}
	m.st.PC = next
	return nil
}

// shamt selects the shift amount: the immediate field for I-type shifts,
// the low bits of rs2's value for R-type.
func shamt(w, rs2val, opcode uint32) uint32 {
	if opcode == 0b0110011 {
		return rs2val & 0x1F
	}
	return w >> 20 & 0x1F
}
