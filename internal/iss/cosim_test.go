package iss_test

import (
	"fmt"
	"math/rand"
	"testing"

	"symsim/internal/core"
	"symsim/internal/cpu/bm32"
	"symsim/internal/cpu/cputest"
	"symsim/internal/cpu/dr5"
	"symsim/internal/cpu/omsp430"
	"symsim/internal/isa"
	"symsim/internal/isa/mips"
	"symsim/internal/isa/msp430"
	"symsim/internal/isa/rv32"
	"symsim/internal/iss"
	"symsim/internal/vvp"
)

// Co-simulation: random but always-terminating programs run on both the
// instruction-set simulator (golden model) and the gate-level core; the
// final architectural state must match exactly. This is the reference-
// model verification of the three processors underlying every result in
// the repository.

const (
	cosimSeeds  = 12
	cosimOps    = 60
	cosimCycles = 100000
)

// --- RV32E ---

func genRV32(r *rand.Rand) *isa.Image {
	a := rv32.NewAsm()
	regs := []int{rv32.T0, rv32.T1, rv32.T2, rv32.S0, rv32.S1, rv32.A0, rv32.A1, rv32.A2, rv32.A3}
	pick := func() int { return regs[r.Intn(len(regs))] }
	// Seed registers with known values.
	for _, reg := range regs {
		a.LI(reg, int32(r.Uint32()))
	}
	label := 0
	for i := 0; i < cosimOps; i++ {
		switch r.Intn(12) {
		case 0:
			a.ADD(pick(), pick(), pick())
		case 1:
			a.SUB(pick(), pick(), pick())
		case 2:
			a.XOR(pick(), pick(), pick())
		case 3:
			a.AND(pick(), pick(), pick())
		case 4:
			a.OR(pick(), pick(), pick())
		case 5:
			a.SLT(pick(), pick(), pick())
		case 6:
			a.SLTU(pick(), pick(), pick())
		case 7:
			a.SLLI(pick(), pick(), r.Intn(32))
		case 8:
			a.SRAI(pick(), pick(), r.Intn(32))
		case 9:
			a.ADDI(pick(), pick(), int32(r.Intn(4096)-2048))
		case 10:
			// Store then load through a random slot.
			slot := int32(r.Intn(32)) * 4
			a.SW(pick(), rv32.X0, slot)
			a.LW(pick(), rv32.X0, slot)
		case 11:
			// Forward branch over one instruction.
			lbl := fmt.Sprintf("L%d", label)
			label++
			if r.Intn(2) == 0 {
				a.BEQ(pick(), pick(), lbl)
			} else {
				a.BLTU(pick(), pick(), lbl)
			}
			a.ADDI(pick(), pick(), 1)
			a.Label(lbl)
		}
	}
	// Bounded loop to exercise backward branches.
	a.LI(rv32.A4, int32(2+r.Intn(5)))
	a.Label("loop")
	a.ADD(rv32.A5, rv32.A5, rv32.A4)
	a.ADDI(rv32.A4, rv32.A4, -1)
	a.BNE(rv32.A4, rv32.X0, "loop")
	// Dump every register to memory for comparison.
	for i, reg := range regs {
		a.SW(reg, rv32.X0, int32(64+i*4))
	}
	a.SW(rv32.A5, rv32.X0, 60)
	a.Halt()
	return a.MustAssemble()
}

func TestCosimRV32(t *testing.T) {
	for seed := int64(0); seed < cosimSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := genRV32(rand.New(rand.NewSource(seed)))
			model := iss.NewRV32(img)
			if err := iss.Run(model, 100000); err != nil {
				t.Fatalf("iss: %v", err)
			}
			p, err := dr5.Build(img)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := cputest.Run(p, cosimCycles)
			if err != nil {
				t.Fatal(err)
			}
			compareMem(t, sim, model.State(), 0xFFFFFFFF)
			comparePC(t, p, sim, model.State())
		})
	}
}

// --- MIPS32 ---

func genMIPS(r *rand.Rand) *isa.Image {
	a := mips.NewAsm()
	regs := []int{mips.T0, mips.T1, mips.T2, mips.T3, mips.S0, mips.S1, mips.A0, mips.A1}
	pick := func() int { return regs[r.Intn(len(regs))] }
	for _, reg := range regs {
		a.LI(reg, int32(r.Uint32()))
	}
	label := 0
	for i := 0; i < cosimOps; i++ {
		switch r.Intn(13) {
		case 0:
			a.ADDU(pick(), pick(), pick())
		case 1:
			a.SUBU(pick(), pick(), pick())
		case 2:
			a.XOR(pick(), pick(), pick())
		case 3:
			a.NOR(pick(), pick(), pick())
		case 4:
			a.SLT(pick(), pick(), pick())
		case 5:
			a.SLTU(pick(), pick(), pick())
		case 6:
			a.SLL(pick(), pick(), r.Intn(32))
		case 7:
			a.SRAV(pick(), pick(), pick())
		case 8:
			a.ADDIU(pick(), pick(), int32(r.Intn(65536)-32768))
		case 9:
			a.ANDI(pick(), pick(), int32(r.Intn(65536)))
		case 10:
			slot := int32(r.Intn(32)) * 4
			a.SW(pick(), mips.ZERO, slot)
			a.LW(pick(), mips.ZERO, slot)
		case 11:
			lbl := fmt.Sprintf("L%d", label)
			label++
			if r.Intn(2) == 0 {
				a.BEQ(pick(), pick(), lbl)
			} else {
				a.BNE(pick(), pick(), lbl)
			}
			a.ADDIU(pick(), pick(), 1)
			a.Label(lbl)
		case 12:
			a.MULTU(pick(), pick())
			a.MFLO(pick())
			a.MFHI(pick())
		}
	}
	a.LI(mips.S2, int32(2+r.Intn(5)))
	a.Label("loop")
	a.ADDU(mips.S3, mips.S3, mips.S2)
	a.ADDIU(mips.S2, mips.S2, -1)
	a.BNE(mips.S2, mips.ZERO, "loop")
	for i, reg := range regs {
		a.SW(reg, mips.ZERO, int32(64+i*4))
	}
	a.SW(mips.S3, mips.ZERO, 60)
	a.Halt()
	return a.MustAssemble()
}

func TestCosimMIPS(t *testing.T) {
	for seed := int64(0); seed < cosimSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := genMIPS(rand.New(rand.NewSource(seed)))
			model := iss.NewMIPS(img)
			if err := iss.Run(model, 100000); err != nil {
				t.Fatalf("iss: %v", err)
			}
			p, err := bm32.Build(img)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := cputest.Run(p, cosimCycles)
			if err != nil {
				t.Fatal(err)
			}
			compareMem(t, sim, model.State(), 0xFFFFFFFF)
			comparePC(t, p, sim, model.State())
		})
	}
}

// --- MSP430 ---

func genMSP430(r *rand.Rand) *isa.Image {
	a := msp430.NewAsm()
	regs := []int{msp430.R4, msp430.R5, msp430.R6, msp430.R7, msp430.R8, msp430.R9, msp430.R10}
	pick := func() int { return regs[r.Intn(len(regs))] }
	for _, reg := range regs {
		a.MOVI(int32(r.Intn(1<<16)), reg)
	}
	label := 0
	for i := 0; i < cosimOps; i++ {
		switch r.Intn(13) {
		case 0:
			a.ADD(pick(), pick())
		case 1:
			a.SUB(pick(), pick())
		case 2:
			a.XOR(pick(), pick())
		case 3:
			a.AND(pick(), pick())
		case 4:
			a.BIS(pick(), pick())
		case 5:
			a.BIC(pick(), pick())
		case 6:
			a.ADDC(pick(), pick())
		case 7:
			a.RRA(pick())
		case 8:
			a.RRC(pick())
		case 9:
			a.SWPB(pick())
		case 10:
			slot := msp430.DataAddr(r.Intn(32))
			a.StoreAbs(pick(), slot)
			a.LoadAbs(slot, pick())
		case 11:
			lbl := fmt.Sprintf("L%d", label)
			label++
			a.CMP(pick(), pick())
			switch r.Intn(4) {
			case 0:
				a.JEQ(lbl)
			case 1:
				a.JNE(lbl)
			case 2:
				a.JC(lbl)
			case 3:
				a.JGE(lbl)
			}
			a.ADDI(1, pick())
			a.Label(lbl)
		case 12:
			a.StoreAbs(pick(), msp430.AddrMPY)
			a.StoreAbs(pick(), msp430.AddrOP2)
			a.LoadAbs(msp430.AddrRESLO, pick())
			a.LoadAbs(msp430.AddrRESHI, pick())
		}
	}
	a.MOVI(int32(2+r.Intn(5)), msp430.R11)
	a.Label("loop")
	a.ADD(msp430.R11, msp430.R12)
	a.SUBI(1, msp430.R11)
	a.JNE("loop")
	for i, reg := range regs {
		a.StoreAbs(reg, msp430.DataAddr(32+i))
	}
	a.StoreAbs(msp430.R12, msp430.DataAddr(30))
	a.Halt()
	return a.MustAssemble()
}

func TestCosimMSP430(t *testing.T) {
	for seed := int64(0); seed < cosimSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := genMSP430(rand.New(rand.NewSource(seed)))
			model := iss.NewMSP430(img)
			if err := iss.Run(model, 100000); err != nil {
				t.Fatalf("iss: %v", err)
			}
			p, err := omsp430.Build(img)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := cputest.Run(p, cosimCycles)
			if err != nil {
				t.Fatal(err)
			}
			compareMem(t, sim, model.State(), 0xFFFF)
			comparePC(t, p, sim, model.State())
		})
	}
}

// compareMem checks every known gate-level data-memory word against the
// golden model, plus every architectural register via the register-file
// flip-flop outputs. Gate-level words that were never written remain X and
// are skipped (the golden model defaults them to zero).
func compareMem(t *testing.T, sim *vvp.Simulator, st *iss.State, mask uint64) {
	t.Helper()
	mid, ok := sim.Design().MemByName("dmem")
	if !ok {
		t.Fatal("no dmem")
	}
	for w := 0; w < len(st.Mem); w++ {
		v := sim.MemWord(mid, w)
		u, known := v.Uint64()
		if !known {
			continue
		}
		if u != uint64(st.Mem[w])&mask {
			t.Errorf("dmem[%d]: gate %#x, iss %#x", w, u, uint64(st.Mem[w])&mask)
		}
	}
	for rIdx := range st.Regs {
		bus, err := cputest.BusValue(sim, fmt.Sprintf("rf_r%d", rIdx))
		if err != nil {
			t.Fatalf("register %d: %v", rIdx, err)
		}
		u, known := bus.Uint64()
		if !known {
			continue
		}
		if u != uint64(st.Regs[rIdx])&mask {
			t.Errorf("r%d: gate %#x, iss %#x", rIdx, u, uint64(st.Regs[rIdx])&mask)
		}
	}
}

// comparePC checks the final program counter.
func comparePC(t *testing.T, p *core.Platform, sim *vvp.Simulator, st *iss.State) {
	t.Helper()
	pc, ok := sim.VecValue(p.Spec.PC).Uint64()
	if !ok {
		t.Fatal("gate-level PC unknown at halt")
	}
	if pc != uint64(st.PC) {
		t.Errorf("pc: gate %#x, iss %#x", pc, st.PC)
	}
}
