package iss

import (
	"fmt"

	"symsim/internal/isa"
)

// MIPS interprets the bm32 subset of MIPS32, matching the gate-level core
// in internal/cpu/bm32: no branch delay slots, 16-bit PC arithmetic,
// a 14-bit jump-target field, unsigned {HI,LO} multiplication for both
// MULT encodings, and the taken-self-jump terminating condition.
type MIPS struct {
	rom  []uint32
	st   State
	init map[int]uint32
}

// NewMIPS builds an interpreter for the image.
func NewMIPS(img *isa.Image) *MIPS {
	m := &MIPS{init: map[int]uint32{}}
	for _, w := range img.ROM {
		v, _ := w.Uint64()
		m.rom = append(m.rom, uint32(v))
	}
	for idx, v := range img.Data {
		if u, ok := v.Uint64(); ok {
			m.init[idx] = uint32(u)
		}
	}
	return m
}

// State exposes the architectural state.
func (m *MIPS) State() *State { return &m.st }

// Reset re-initializes registers, memory and the PC.
func (m *MIPS) Reset() {
	m.st = State{Regs: make([]uint32, 32), Mem: make([]uint32, 256)}
	for idx, v := range m.init {
		if idx >= 0 && idx < len(m.st.Mem) {
			m.st.Mem[idx] = v
		}
	}
}

func (m *MIPS) setReg(i, v uint32) {
	if i&0x1F != 0 {
		m.st.Regs[i&0x1F] = v
	}
}

// Step executes one instruction.
func (m *MIPS) Step() error {
	idx := int(m.st.PC>>2) & 0x3FF
	if idx >= len(m.rom) {
		return fmt.Errorf("iss/mips: fetch past program end at pc=%#x", m.st.PC)
	}
	w := m.rom[idx]
	op := w >> 26
	rs := w >> 21 & 0x1F
	rt := w >> 16 & 0x1F
	rd := w >> 11 & 0x1F
	sh := w >> 6 & 0x1F
	funct := w & 0x3F
	imm := w & 0xFFFF
	immSE := uint32(int32(int16(imm)))

	pc := m.st.PC & 0xFFFF
	pc4 := (pc + 4) & 0xFFFF
	next := pc4

	a := m.st.Regs[rs]
	b := m.st.Regs[rt]

	takeJump := func(target uint32) {
		target &= 0xFFFF
		if target == pc {
			m.st.Halted = true
		}
		next = target
	}

	switch op {
	case 0x00: // SPECIAL
		switch funct {
		case 0x00:
			m.setReg(rd, b<<sh)
		case 0x02:
			m.setReg(rd, b>>sh)
		case 0x03:
			m.setReg(rd, uint32(int32(b)>>sh))
		case 0x04:
			m.setReg(rd, b<<(a&0x1F))
		case 0x06:
			m.setReg(rd, b>>(a&0x1F))
		case 0x07:
			m.setReg(rd, uint32(int32(b)>>(a&0x1F)))
		case 0x08: // JR
			takeJump(a)
		case 0x10:
			m.setReg(rd, m.st.HI)
		case 0x12:
			m.setReg(rd, m.st.LO)
		case 0x18, 0x19: // MULT/MULTU: the core multiplies unsigned
			prod := uint64(a) * uint64(b)
			m.st.LO = uint32(prod)
			m.st.HI = uint32(prod >> 32)
		case 0x20, 0x21:
			m.setReg(rd, a+b)
		case 0x22, 0x23:
			m.setReg(rd, a-b)
		case 0x24:
			m.setReg(rd, a&b)
		case 0x25:
			m.setReg(rd, a|b)
		case 0x26:
			m.setReg(rd, a^b)
		case 0x27:
			m.setReg(rd, ^(a | b))
		case 0x2A:
			m.setReg(rd, boolTo(int32(a) < int32(b)))
		case 0x2B:
			m.setReg(rd, boolTo(a < b))
		default:
			return fmt.Errorf("iss/mips: unsupported funct %#x", funct)
		}
	case 0x02: // J — the core uses the low 14 bits of the field
		takeJump(w & 0x3FFF << 2)
	case 0x03: // JAL
		m.setReg(31, pc4)
		takeJump(w & 0x3FFF << 2)
	case 0x04: // BEQ
		if a == b {
			takeJump(pc4 + immSE<<2)
		}
	case 0x05: // BNE
		if a != b {
			takeJump(pc4 + immSE<<2)
		}
	case 0x08, 0x09: // ADDI/ADDIU
		m.setReg(rt, a+immSE)
	case 0x0A: // SLTI
		m.setReg(rt, boolTo(int32(a) < int32(immSE)))
	case 0x0B: // SLTIU
		m.setReg(rt, boolTo(a < immSE))
	case 0x0C: // ANDI
		m.setReg(rt, a&imm)
	case 0x0D: // ORI
		m.setReg(rt, a|imm)
	case 0x0E: // XORI
		m.setReg(rt, a^imm)
	case 0x0F: // LUI
		m.setReg(rt, imm<<16)
	case 0x23: // LW
		m.setReg(rt, m.st.Mem[int(a+immSE)>>2&0xFF])
	case 0x2B: // SW
		m.st.Mem[int(a+immSE)>>2&0xFF] = b
	default:
		return fmt.Errorf("iss/mips: unsupported opcode %#x", op)
	}
	m.st.PC = next
	return nil
}

func boolTo(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
