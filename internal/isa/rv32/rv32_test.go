package rv32

import (
	"strings"
	"testing"
)

func TestEncodings(t *testing.T) {
	// Golden encodings cross-checked against the RISC-V spec examples.
	cases := []struct {
		emit func(a *Asm)
		want uint32
	}{
		{func(a *Asm) { a.ADDI(A0, X0, 42) }, 0x02A00513},
		{func(a *Asm) { a.ADD(A0, A1, A2) }, 0x00C58533},
		{func(a *Asm) { a.SUB(A0, A1, A2) }, 0x40C58533},
		{func(a *Asm) { a.LUI(T0, 0xDEAD000) }, 0x0DEAD2B7},
		{func(a *Asm) { a.LW(A0, SP, 8) }, 0x00812503},
		{func(a *Asm) { a.SW(A0, SP, 8) }, 0x00A12423},
		{func(a *Asm) { a.SLLI(T1, T1, 3) }, 0x00331313},
		{func(a *Asm) { a.SRAI(T1, T1, 3) }, 0x40335313},
		{func(a *Asm) { a.JALR(X0, RA, 0) }, 0x00008067},
	}
	for i, c := range cases {
		a := NewAsm()
		c.emit(a)
		img := a.MustAssemble()
		got, _ := img.ROM[0].Uint64()
		if uint32(got) != c.want {
			t.Errorf("case %d: encoded %#08x, want %#08x (%s)", i, got, c.want, Disasm(uint32(got)))
		}
	}
}

func TestBranchOffsetEncoding(t *testing.T) {
	a := NewAsm()
	a.Label("top")
	a.NOP()
	a.BNE(T0, X0, "top") // offset -4
	img := a.MustAssemble()
	w, _ := img.ROM[1].Uint64()
	if s := Disasm(uint32(w)); s != "bne x5, x0, -4" {
		t.Errorf("disasm = %q", s)
	}
	// Forward branch.
	b := NewAsm()
	b.BEQ(T0, T1, "fwd")
	b.NOP()
	b.Label("fwd")
	img = b.MustAssemble()
	w, _ = img.ROM[0].Uint64()
	if s := Disasm(uint32(w)); s != "beq x5, x6, 8" {
		t.Errorf("disasm = %q", s)
	}
}

func TestJALOffsetEncoding(t *testing.T) {
	a := NewAsm()
	a.NOP()
	a.NOP()
	a.Label("fn")
	a.NOP()
	b := NewAsm()
	b.JAL(RA, "fn")
	b.NOP()
	b.Label("fn")
	img := b.MustAssemble()
	w, _ := img.ROM[0].Uint64()
	if s := Disasm(uint32(w)); s != "jal x1, 8" {
		t.Errorf("disasm = %q", s)
	}
}

func TestLICoversFullRange(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 2047, -2048, 2048, -2049, 0x12345678, -0x12345678, 0x7FFFFFFF, -0x80000000} {
		a := NewAsm()
		a.LI(T0, v)
		if _, err := a.Assemble(); err != nil {
			t.Errorf("LI(%d): %v", v, err)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAsm()
	a.BNE(T0, X0, "nowhere")
	if _, err := a.Assemble(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("undefined label: %v", err)
	}
	b := NewAsm()
	b.Label("dup")
	b.Label("dup")
	b.NOP()
	if _, err := b.Assemble(); err == nil {
		t.Error("duplicate label accepted")
	}
	c := NewAsm()
	c.ADDI(T0, X0, 5000) // out of 12-bit range
	if _, err := c.Assemble(); err == nil {
		t.Error("oversized immediate accepted")
	}
}

func TestRegisterRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("x16 accepted in RV32E")
		}
	}()
	a := NewAsm()
	a.ADD(16, 0, 0)
}

func TestDisasmCoverage(t *testing.T) {
	a := NewAsm()
	a.LUI(T0, 0x1000)
	a.ADDI(T0, T0, 1)
	a.SLTI(T0, T0, 2)
	a.SLTIU(T0, T0, 2)
	a.XORI(T0, T0, 3)
	a.ORI(T0, T0, 4)
	a.ANDI(T0, T0, 5)
	a.SLLI(T0, T0, 1)
	a.SRLI(T0, T0, 1)
	a.SRAI(T0, T0, 1)
	a.ADD(T0, T0, T1)
	a.SUB(T0, T0, T1)
	a.SLT(T0, T0, T1)
	a.SLTU(T0, T0, T1)
	a.XOR(T0, T0, T1)
	a.SRL(T0, T0, T1)
	a.SRA(T0, T0, T1)
	a.OR(T0, T0, T1)
	a.AND(T0, T0, T1)
	a.SLL(T0, T0, T1)
	a.LW(T0, SP, 0)
	a.SW(T0, SP, 0)
	a.BLTU(T0, T1, "x")
	a.BGEU(T0, T1, "x")
	a.BLT(T0, T1, "x")
	a.BGE(T0, T1, "x")
	a.Label("x")
	a.JALR(RA, T0, 4)
	img := a.MustAssemble()
	for i, w := range img.ROM {
		v, _ := w.Uint64()
		if s := Disasm(uint32(v)); strings.HasPrefix(s, ".word") {
			t.Errorf("instruction %d (%#08x) not disassembled", i, v)
		}
	}
	if s := Disasm(0xFFFFFFFF); !strings.HasPrefix(s, ".word") {
		t.Errorf("garbage disassembled as %q", s)
	}
}

func TestHaltIsSelfJump(t *testing.T) {
	a := NewAsm()
	a.NOP()
	a.Halt()
	img := a.MustAssemble()
	w, _ := img.ROM[1].Uint64()
	if s := Disasm(uint32(w)); s != "jal x0, 0" {
		t.Errorf("halt = %q", s)
	}
}
