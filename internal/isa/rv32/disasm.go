package rv32

import "fmt"

// Disasm renders one encoded instruction for debugging and test oracles.
// Unknown encodings render as ".word 0x...".
func Disasm(w uint32) string {
	opcode := w & 0x7F
	rd := int(w >> 7 & 0x1F)
	funct3 := w >> 12 & 0x7
	rs1 := int(w >> 15 & 0x1F)
	rs2 := int(w >> 20 & 0x1F)
	funct7 := w >> 25

	immI := int32(w) >> 20
	immS := int32(w)>>25<<5 | int32(w>>7&0x1F)
	immB := int32(w>>31&1)<<12 | int32(w>>7&1)<<11 | int32(w>>25&0x3F)<<5 | int32(w>>8&0xF)<<1
	immB = immB << 19 >> 19
	immJ := int32(w>>31&1)<<20 | int32(w>>12&0xFF)<<12 | int32(w>>20&1)<<11 | int32(w>>21&0x3FF)<<1
	immJ = immJ << 11 >> 11

	switch opcode {
	case opLUI:
		return fmt.Sprintf("lui x%d, 0x%x", rd, w>>12)
	case opALUImm:
		switch funct3 {
		case 0b000:
			return fmt.Sprintf("addi x%d, x%d, %d", rd, rs1, immI)
		case 0b010:
			return fmt.Sprintf("slti x%d, x%d, %d", rd, rs1, immI)
		case 0b011:
			return fmt.Sprintf("sltiu x%d, x%d, %d", rd, rs1, immI)
		case 0b100:
			return fmt.Sprintf("xori x%d, x%d, %d", rd, rs1, immI)
		case 0b110:
			return fmt.Sprintf("ori x%d, x%d, %d", rd, rs1, immI)
		case 0b111:
			return fmt.Sprintf("andi x%d, x%d, %d", rd, rs1, immI)
		case 0b001:
			return fmt.Sprintf("slli x%d, x%d, %d", rd, rs1, rs2)
		case 0b101:
			if funct7 == 0b0100000 {
				return fmt.Sprintf("srai x%d, x%d, %d", rd, rs1, rs2)
			}
			return fmt.Sprintf("srli x%d, x%d, %d", rd, rs1, rs2)
		}
	case opALU:
		name := map[uint32]string{
			0b000: "add", 0b001: "sll", 0b010: "slt", 0b011: "sltu",
			0b100: "xor", 0b101: "srl", 0b110: "or", 0b111: "and",
		}[funct3]
		if funct7 == 0b0100000 {
			if funct3 == 0b000 {
				name = "sub"
			} else if funct3 == 0b101 {
				name = "sra"
			}
		}
		return fmt.Sprintf("%s x%d, x%d, x%d", name, rd, rs1, rs2)
	case opLoad:
		if funct3 == 0b010 {
			return fmt.Sprintf("lw x%d, %d(x%d)", rd, immI, rs1)
		}
	case opStore:
		if funct3 == 0b010 {
			return fmt.Sprintf("sw x%d, %d(x%d)", rs2, immS, rs1)
		}
	case opBranch:
		name := map[uint32]string{
			0b000: "beq", 0b001: "bne", 0b100: "blt",
			0b101: "bge", 0b110: "bltu", 0b111: "bgeu",
		}[funct3]
		if name != "" {
			return fmt.Sprintf("%s x%d, x%d, %d", name, rs1, rs2, immB)
		}
	case opJAL:
		return fmt.Sprintf("jal x%d, %d", rd, immJ)
	case opJALR:
		return fmt.Sprintf("jalr x%d, %d(x%d)", rd, immI, rs1)
	}
	return fmt.Sprintf(".word 0x%08x", w)
}
