// Package rv32 implements an RV32E-subset encoder, assembler and
// disassembler for the dr5 processor (darkRiscV in the paper): 16 integer
// registers, the base integer instruction set, no hardware multiply —
// which is why the mult benchmark on dr5 runs a software shift-and-add
// loop and explores multiple simulation paths (paper §5.0.3).
package rv32

import (
	"fmt"

	"symsim/internal/isa"
	"symsim/internal/logic"
)

// Register aliases (RV32E: x0..x15).
const (
	X0 = iota
	RA
	SP
	GP
	TP
	T0
	T1
	T2
	S0
	S1
	A0
	A1
	A2
	A3
	A4
	A5
)

// Opcodes and funct fields of the implemented subset.
const (
	opLUI    = 0b0110111
	opALUImm = 0b0010011
	opALU    = 0b0110011
	opLoad   = 0b0000011
	opStore  = 0b0100011
	opBranch = 0b1100011
	opJAL    = 0b1101111
	opJALR   = 0b1100111
)

func checkReg(r int) {
	if r < 0 || r > 15 {
		panic(fmt.Sprintf("rv32: register x%d out of RV32E range", r))
	}
}

// EncodeR encodes an R-type instruction.
func EncodeR(funct7, rs2, rs1, funct3, rd, opcode uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

// EncodeI encodes an I-type instruction with a 12-bit signed immediate.
func EncodeI(imm int32, rs1, funct3, rd, opcode uint32) uint32 {
	return uint32(imm)&0xFFF<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

// EncodeS encodes an S-type (store) instruction.
func EncodeS(imm int32, rs2, rs1, funct3, opcode uint32) uint32 {
	u := uint32(imm)
	return u>>5&0x7F<<25 | rs2<<20 | rs1<<15 | funct3<<12 | u&0x1F<<7 | opcode
}

// EncodeB encodes a B-type (branch) instruction; imm is the byte offset.
func EncodeB(imm int32, rs2, rs1, funct3, opcode uint32) uint32 {
	u := uint32(imm)
	return u>>12&1<<31 | u>>5&0x3F<<25 | rs2<<20 | rs1<<15 |
		funct3<<12 | u>>1&0xF<<8 | u>>11&1<<7 | opcode
}

// EncodeU encodes a U-type instruction (LUI).
func EncodeU(imm uint32, rd, opcode uint32) uint32 {
	return imm&0xFFFFF000 | rd<<7 | opcode
}

// EncodeJ encodes a J-type (JAL) instruction; imm is the byte offset.
func EncodeJ(imm int32, rd, opcode uint32) uint32 {
	u := uint32(imm)
	return u>>20&1<<31 | u>>1&0x3FF<<21 | u>>11&1<<20 | u>>12&0xFF<<12 | rd<<7 | opcode
}

// Asm is a two-pass RV32E assembler.
type Asm struct {
	words  []uint32
	labels *isa.Labels
	data   map[int]logic.Vec
	xwords []int
	err    error
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: isa.NewLabels(), data: make(map[int]logic.Vec)}
}

// PC returns the byte address of the next emitted instruction.
func (a *Asm) PC() uint32 { return uint32(len(a.words)) * 4 }

// Label defines name at the current PC.
func (a *Asm) Label(name string) {
	if err := a.labels.Define(name, a.PC()); err != nil && a.err == nil {
		a.err = err
	}
}

func (a *Asm) emit(w uint32) { a.words = append(a.words, w) }

// --- data segment helpers ---

// Word initializes data-memory word index to a known 32-bit value.
func (a *Asm) Word(index int, v uint32) { a.data[index] = isa.VecOf(32, uint64(v)) }

// XWord marks data-memory word index as an application input (left X).
func (a *Asm) XWord(index int) { a.xwords = append(a.xwords, index) }

// --- instructions ---

// LUI loads imm (upper 20 bits) into rd.
func (a *Asm) LUI(rd int, imm uint32) { checkReg(rd); a.emit(EncodeU(imm, uint32(rd), opLUI)) }

// ADDI: rd = rs1 + imm.
func (a *Asm) ADDI(rd, rs1 int, imm int32) { a.itype(rd, rs1, imm, 0b000) }

// SLTI: rd = (rs1 <s imm).
func (a *Asm) SLTI(rd, rs1 int, imm int32) { a.itype(rd, rs1, imm, 0b010) }

// SLTIU: rd = (rs1 <u imm).
func (a *Asm) SLTIU(rd, rs1 int, imm int32) { a.itype(rd, rs1, imm, 0b011) }

// XORI: rd = rs1 ^ imm.
func (a *Asm) XORI(rd, rs1 int, imm int32) { a.itype(rd, rs1, imm, 0b100) }

// ORI: rd = rs1 | imm.
func (a *Asm) ORI(rd, rs1 int, imm int32) { a.itype(rd, rs1, imm, 0b110) }

// ANDI: rd = rs1 & imm.
func (a *Asm) ANDI(rd, rs1 int, imm int32) { a.itype(rd, rs1, imm, 0b111) }

func (a *Asm) itype(rd, rs1 int, imm int32, funct3 uint32) {
	checkReg(rd)
	checkReg(rs1)
	if !isa.FitsSigned(int64(imm), 12) && a.err == nil {
		a.err = fmt.Errorf("rv32: immediate %d out of 12-bit range", imm)
	}
	a.emit(EncodeI(imm, uint32(rs1), funct3, uint32(rd), opALUImm))
}

// SLLI: rd = rs1 << sh.
func (a *Asm) SLLI(rd, rs1, sh int) {
	checkReg(rd)
	checkReg(rs1)
	a.emit(EncodeR(0, uint32(sh), uint32(rs1), 0b001, uint32(rd), opALUImm))
}

// SRLI: rd = rs1 >>u sh.
func (a *Asm) SRLI(rd, rs1, sh int) {
	checkReg(rd)
	checkReg(rs1)
	a.emit(EncodeR(0, uint32(sh), uint32(rs1), 0b101, uint32(rd), opALUImm))
}

// SRAI: rd = rs1 >>s sh.
func (a *Asm) SRAI(rd, rs1, sh int) {
	checkReg(rd)
	checkReg(rs1)
	a.emit(EncodeR(0b0100000, uint32(sh), uint32(rs1), 0b101, uint32(rd), opALUImm))
}

func (a *Asm) rtype(rd, rs1, rs2 int, funct3, funct7 uint32) {
	checkReg(rd)
	checkReg(rs1)
	checkReg(rs2)
	a.emit(EncodeR(funct7, uint32(rs2), uint32(rs1), funct3, uint32(rd), opALU))
}

// ADD: rd = rs1 + rs2.
func (a *Asm) ADD(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b000, 0) }

// SUB: rd = rs1 - rs2.
func (a *Asm) SUB(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b000, 0b0100000) }

// SLL: rd = rs1 << rs2.
func (a *Asm) SLL(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b001, 0) }

// SLT: rd = (rs1 <s rs2).
func (a *Asm) SLT(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b010, 0) }

// SLTU: rd = (rs1 <u rs2).
func (a *Asm) SLTU(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b011, 0) }

// XOR: rd = rs1 ^ rs2.
func (a *Asm) XOR(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b100, 0) }

// SRL: rd = rs1 >>u rs2.
func (a *Asm) SRL(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b101, 0) }

// SRA: rd = rs1 >>s rs2.
func (a *Asm) SRA(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b101, 0b0100000) }

// OR: rd = rs1 | rs2.
func (a *Asm) OR(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b110, 0) }

// AND: rd = rs1 & rs2.
func (a *Asm) AND(rd, rs1, rs2 int) { a.rtype(rd, rs1, rs2, 0b111, 0) }

// LW: rd = mem[rs1 + imm].
func (a *Asm) LW(rd, rs1 int, imm int32) {
	checkReg(rd)
	checkReg(rs1)
	a.emit(EncodeI(imm, uint32(rs1), 0b010, uint32(rd), opLoad))
}

// SW: mem[rs1 + imm] = rs2.
func (a *Asm) SW(rs2, rs1 int, imm int32) {
	checkReg(rs2)
	checkReg(rs1)
	a.emit(EncodeS(imm, uint32(rs2), uint32(rs1), 0b010, opStore))
}

func (a *Asm) branch(rs1, rs2 int, funct3 uint32, label string) {
	checkReg(rs1)
	checkReg(rs2)
	a.labels.Fixups = append(a.labels.Fixups, isa.Fixup{
		Word: len(a.words), Label: label,
		Apply: func(word uint64, target, instr uint32) (uint64, error) {
			off := int64(target) - int64(instr)
			if !isa.FitsSigned(off, 13) {
				return 0, fmt.Errorf("branch offset %d out of range", off)
			}
			return uint64(uint32(word) | EncodeB(int32(off), 0, 0, 0, 0)), nil
		},
	})
	a.emit(EncodeB(0, uint32(rs2), uint32(rs1), funct3, opBranch))
}

// BEQ branches to label when rs1 == rs2.
func (a *Asm) BEQ(rs1, rs2 int, label string) { a.branch(rs1, rs2, 0b000, label) }

// BNE branches to label when rs1 != rs2.
func (a *Asm) BNE(rs1, rs2 int, label string) { a.branch(rs1, rs2, 0b001, label) }

// BLT branches to label when rs1 <s rs2.
func (a *Asm) BLT(rs1, rs2 int, label string) { a.branch(rs1, rs2, 0b100, label) }

// BGE branches to label when rs1 >=s rs2.
func (a *Asm) BGE(rs1, rs2 int, label string) { a.branch(rs1, rs2, 0b101, label) }

// BLTU branches to label when rs1 <u rs2.
func (a *Asm) BLTU(rs1, rs2 int, label string) { a.branch(rs1, rs2, 0b110, label) }

// BGEU branches to label when rs1 >=u rs2.
func (a *Asm) BGEU(rs1, rs2 int, label string) { a.branch(rs1, rs2, 0b111, label) }

// JAL jumps to label, writing the return address to rd.
func (a *Asm) JAL(rd int, label string) {
	checkReg(rd)
	a.labels.Fixups = append(a.labels.Fixups, isa.Fixup{
		Word: len(a.words), Label: label,
		Apply: func(word uint64, target, instr uint32) (uint64, error) {
			off := int64(target) - int64(instr)
			if !isa.FitsSigned(off, 21) {
				return 0, fmt.Errorf("jal offset %d out of range", off)
			}
			return uint64(uint32(word) | EncodeJ(int32(off), 0, 0)), nil
		},
	})
	a.emit(EncodeJ(0, uint32(rd), opJAL))
}

// JALR jumps to rs1+imm, writing the return address to rd.
func (a *Asm) JALR(rd, rs1 int, imm int32) {
	checkReg(rd)
	checkReg(rs1)
	a.emit(EncodeI(imm, uint32(rs1), 0b000, uint32(rd), opJALR))
}

// Halt emits the terminating jump-to-self the dr5 core detects as the
// simulation terminating condition.
func (a *Asm) Halt() {
	here := fmt.Sprintf(".halt%d", len(a.words))
	a.Label(here)
	a.JAL(X0, here)
}

// LI loads a full 32-bit constant with LUI+ADDI (one ADDI when it fits).
func (a *Asm) LI(rd int, v int32) {
	if isa.FitsSigned(int64(v), 12) {
		a.ADDI(rd, X0, v)
		return
	}
	upper := uint32(v) + 0x800 // compensate ADDI sign extension
	a.LUI(rd, upper&0xFFFFF000)
	if low := int32(uint32(v)<<20) >> 20; low != 0 {
		a.ADDI(rd, rd, low)
	}
}

// NOP emits addi x0, x0, 0.
func (a *Asm) NOP() { a.ADDI(X0, X0, 0) }

// Assemble resolves labels and returns the image.
func (a *Asm) Assemble() (*isa.Image, error) {
	if a.err != nil {
		return nil, a.err
	}
	err := a.labels.Resolve(
		func(w int) uint32 { return uint32(w) * 4 },
		func(w int) uint64 { return uint64(a.words[w]) },
		func(w int, v uint64) { a.words[w] = uint32(v) },
	)
	if err != nil {
		return nil, err
	}
	img := &isa.Image{Data: a.data, XWords: a.xwords, Symbols: a.labels.Defs}
	for _, w := range a.words {
		img.ROM = append(img.ROM, isa.VecOf(32, uint64(w)))
	}
	return img, nil
}

// MustAssemble is Assemble that panics on error; for tests and the fixed
// benchmark programs.
func (a *Asm) MustAssemble() *isa.Image {
	img, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return img
}
