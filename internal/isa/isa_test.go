package isa

import (
	"testing"

	"symsim/internal/logic"
)

func TestFitsSigned(t *testing.T) {
	cases := []struct {
		v    int64
		bits int
		want bool
	}{
		{0, 12, true}, {2047, 12, true}, {-2048, 12, true},
		{2048, 12, false}, {-2049, 12, false},
		{-1, 1, true}, {0, 1, true}, {1, 1, false},
	}
	for _, c := range cases {
		if got := FitsSigned(c.v, c.bits); got != c.want {
			t.Errorf("FitsSigned(%d, %d) = %v", c.v, c.bits, got)
		}
	}
}

func TestLabelsResolve(t *testing.T) {
	l := NewLabels()
	if err := l.Define("a", 8); err != nil {
		t.Fatal(err)
	}
	if err := l.Define("a", 12); err == nil {
		t.Fatal("duplicate label accepted")
	}
	words := []uint64{0, 0}
	l.Fixups = append(l.Fixups, Fixup{
		Word: 1, Label: "a",
		Apply: func(w uint64, target, instr uint32) (uint64, error) {
			return uint64(target - instr), nil
		},
	})
	err := l.Resolve(
		func(w int) uint32 { return uint32(w) * 4 },
		func(w int) uint64 { return words[w] },
		func(w int, v uint64) { words[w] = v },
	)
	if err != nil {
		t.Fatal(err)
	}
	if words[1] != 4 {
		t.Errorf("patched word = %d, want 4", words[1])
	}

	l.Fixups = append(l.Fixups, Fixup{Word: 0, Label: "missing", Apply: nil})
	if err := l.Resolve(func(int) uint32 { return 0 }, func(int) uint64 { return 0 }, func(int, uint64) {}); err == nil {
		t.Fatal("missing label resolved")
	}
}

func TestImageDataVec(t *testing.T) {
	img := &Image{Data: map[int]logic.Vec{
		2: logic.NewVecUint64(16, 0xBEEF),
		9: logic.NewVecUint64(16, 7),
	}}
	vecs := img.DataVec(4, 16)
	if len(vecs) != 4 {
		t.Fatalf("len = %d", len(vecs))
	}
	// Word 2 known, others all-X, out-of-range word 9 dropped.
	if v, ok := vecs[2].Uint64(); !ok || v != 0xBEEF {
		t.Errorf("word 2 = %s", vecs[2])
	}
	if vecs[0].CountX() != 16 || vecs[3].CountX() != 16 {
		t.Error("unset words should be all-X")
	}
}

func TestImageDataVecWidthClamp(t *testing.T) {
	img := &Image{Data: map[int]logic.Vec{0: logic.NewVecUint64(32, 0xFFFF0001)}}
	vecs := img.DataVec(1, 16)
	if v, ok := vecs[0].Uint64(); !ok || v != 0x0001 {
		t.Errorf("clamped word = %s", vecs[0])
	}
}

func TestVecOf(t *testing.T) {
	v := VecOf(8, 0xA5)
	if got, ok := v.Uint64(); !ok || got != 0xA5 {
		t.Errorf("VecOf = %s", v)
	}
}
