// Package isa holds the pieces shared by the three instruction-set
// assemblers (mips, msp430, rv32): the loadable program image handed to a
// CPU builder and the label-patching machinery the assemblers use.
//
// The paper runs compiled C benchmarks; this reproduction hand-assembles
// the same six benchmarks per ISA (see internal/prog), preserving the
// control-flow structure the paper's results depend on.
package isa

import (
	"fmt"

	"symsim/internal/logic"
)

// Image is an assembled program plus its data-memory initialization: the
// inputs the testbench of paper Listing 1 replaces with Xs are listed in
// XWords.
type Image struct {
	// ROM holds program memory words (width fixed by the target CPU).
	ROM []logic.Vec
	// Data holds the initial data-memory contents (missing words are X by
	// memory default, so list *known* initial words here).
	Data map[int]logic.Vec
	// XWords lists data words that are application inputs: the loader
	// leaves them all-X ("set input dependent memory locations as X").
	XWords []int
	// Symbols maps label names to their program addresses, for
	// disassembly and debugging.
	Symbols map[string]uint32
}

// DataVec renders the data initialization for a memory of the given word
// count and width: known words from Data, everything else X.
func (im *Image) DataVec(words, width int) []logic.Vec {
	out := make([]logic.Vec, words)
	for i := range out {
		out[i] = logic.NewVec(width) // all X
	}
	// Unwritten RAM powers up unknown, but the bulk of a benchmark's
	// working memory is written before use; words never listed stay X
	// only if the program truly never initializes them.
	for w, v := range im.Data {
		if w >= 0 && w < words {
			c := logic.NewVec(width)
			for b := 0; b < width && b < v.Width(); b++ {
				c.Set(b, v.Get(b))
			}
			out[w] = c
		}
	}
	return out
}

// Fixup is a pending label reference within an assembler.
type Fixup struct {
	// Word is the instruction index to patch.
	Word int
	// Label is the referenced label name.
	Label string
	// Apply patches the encoded word given the resolved label address
	// and the address of the referencing instruction.
	Apply func(word uint64, labelAddr, instrAddr uint32) (uint64, error)
}

// Labels tracks label definitions and fixups for a two-pass assembler.
type Labels struct {
	Defs   map[string]uint32
	Fixups []Fixup
}

// NewLabels returns an empty label tracker.
func NewLabels() *Labels { return &Labels{Defs: make(map[string]uint32)} }

// Define binds a label to an address; duplicate definitions error at
// Resolve time via a sentinel.
func (l *Labels) Define(name string, addr uint32) error {
	if _, dup := l.Defs[name]; dup {
		return fmt.Errorf("isa: duplicate label %q", name)
	}
	l.Defs[name] = addr
	return nil
}

// Resolve applies every fixup against the definitions, patching words via
// the patch callback.
func (l *Labels) Resolve(addrOf func(word int) uint32, get func(word int) uint64, set func(word int, v uint64)) error {
	for _, f := range l.Fixups {
		target, ok := l.Defs[f.Label]
		if !ok {
			return fmt.Errorf("isa: undefined label %q", f.Label)
		}
		patched, err := f.Apply(get(f.Word), target, addrOf(f.Word))
		if err != nil {
			return fmt.Errorf("isa: label %q: %v", f.Label, err)
		}
		set(f.Word, patched)
	}
	return nil
}

// FitsSigned reports whether v fits in a signed field of the given bits.
func FitsSigned(v int64, bits int) bool {
	min := -(int64(1) << uint(bits-1))
	max := int64(1)<<uint(bits-1) - 1
	return v >= min && v <= max
}

// VecOf packs the low width bits of v into a known logic vector.
func VecOf(width int, v uint64) logic.Vec { return logic.NewVecUint64(width, v) }
