// Package mips implements a MIPS32-subset encoder, assembler and
// disassembler for the bm32 processor of the paper's evaluation (a custom
// implementation of the textbook 32-bit MIPS [24], with a hardware
// multiplier). Conditional control flow follows the MIPS idiom the paper
// describes in §5.0.3: a compare (SLT/SUB) writes a general register and
// BEQ/BNE against $zero resolves the jump, so the monitored control-flow
// state is the 16-bit compare-result bus rather than 1-bit flags.
package mips

import (
	"fmt"

	"symsim/internal/isa"
	"symsim/internal/logic"
)

// Register aliases.
const (
	ZERO = iota
	AT
	V0
	V1
	A0
	A1
	A2
	A3
	T0
	T1
	T2
	T3
	T4
	T5
	T6
	T7
	S0
	S1
	S2
	S3
	S4
	S5
	S6
	S7
	T8
	T9
	K0
	K1
	GP
	SP
	FP
	RA
)

// R-type funct codes of the implemented subset.
const (
	fnSLL   = 0x00
	fnSRL   = 0x02
	fnSRA   = 0x03
	fnSLLV  = 0x04
	fnSRLV  = 0x06
	fnSRAV  = 0x07
	fnJR    = 0x08
	fnMFHI  = 0x10
	fnMFLO  = 0x12
	fnMULT  = 0x18
	fnMULTU = 0x19
	fnADD   = 0x20
	fnADDU  = 0x21
	fnSUB   = 0x22
	fnSUBU  = 0x23
	fnAND   = 0x24
	fnOR    = 0x25
	fnXOR   = 0x26
	fnNOR   = 0x27
	fnSLT   = 0x2A
	fnSLTU  = 0x2B
)

// Opcodes of the implemented subset.
const (
	opSPECIAL = 0x00
	opJ       = 0x02
	opJAL     = 0x03
	opBEQ     = 0x04
	opBNE     = 0x05
	opADDI    = 0x08
	opADDIU   = 0x09
	opSLTI    = 0x0A
	opSLTIU   = 0x0B
	opANDI    = 0x0C
	opORI     = 0x0D
	opXORI    = 0x0E
	opLUI     = 0x0F
	opLW      = 0x23
	opSW      = 0x2B
)

func checkReg(r int) {
	if r < 0 || r > 31 {
		panic(fmt.Sprintf("mips: register $%d out of range", r))
	}
}

// EncodeR encodes an R-type instruction.
func EncodeR(rs, rt, rd, shamt, funct uint32) uint32 {
	return rs<<21 | rt<<16 | rd<<11 | shamt<<6 | funct
}

// EncodeI encodes an I-type instruction.
func EncodeI(op uint32, rs, rt uint32, imm uint16) uint32 {
	return op<<26 | rs<<21 | rt<<16 | uint32(imm)
}

// EncodeJ encodes a J-type instruction; target is a byte address.
func EncodeJ(op uint32, target uint32) uint32 {
	return op<<26 | target>>2&0x03FFFFFF
}

// Asm is a two-pass MIPS32 assembler.
type Asm struct {
	words  []uint32
	labels *isa.Labels
	data   map[int]logic.Vec
	xwords []int
	err    error
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: isa.NewLabels(), data: make(map[int]logic.Vec)}
}

// PC returns the byte address of the next emitted instruction.
func (a *Asm) PC() uint32 { return uint32(len(a.words)) * 4 }

// Label defines name at the current PC.
func (a *Asm) Label(name string) {
	if err := a.labels.Define(name, a.PC()); err != nil && a.err == nil {
		a.err = err
	}
}

func (a *Asm) emit(w uint32) { a.words = append(a.words, w) }

// Word initializes data-memory word index to a known 32-bit value.
func (a *Asm) Word(index int, v uint32) { a.data[index] = isa.VecOf(32, uint64(v)) }

// XWord marks data-memory word index as an application input (left X).
func (a *Asm) XWord(index int) { a.xwords = append(a.xwords, index) }

func (a *Asm) rtype(rd, rs, rt, shamt, funct int) {
	checkReg(rd)
	checkReg(rs)
	checkReg(rt)
	a.emit(EncodeR(uint32(rs), uint32(rt), uint32(rd), uint32(shamt), uint32(funct)))
}

// ADDU: rd = rs + rt.
func (a *Asm) ADDU(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnADDU) }

// ADD: rd = rs + rt (no trap in this implementation).
func (a *Asm) ADD(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnADD) }

// SUBU: rd = rs - rt.
func (a *Asm) SUBU(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnSUBU) }

// SUB: rd = rs - rt.
func (a *Asm) SUB(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnSUB) }

// AND: rd = rs & rt.
func (a *Asm) AND(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnAND) }

// OR: rd = rs | rt.
func (a *Asm) OR(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnOR) }

// XOR: rd = rs ^ rt.
func (a *Asm) XOR(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnXOR) }

// NOR: rd = ~(rs | rt).
func (a *Asm) NOR(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnNOR) }

// SLT: rd = (rs <s rt).
func (a *Asm) SLT(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnSLT) }

// SLTU: rd = (rs <u rt).
func (a *Asm) SLTU(rd, rs, rt int) { a.rtype(rd, rs, rt, 0, fnSLTU) }

// SLL: rd = rt << shamt.
func (a *Asm) SLL(rd, rt, shamt int) { a.rtype(rd, 0, rt, shamt, fnSLL) }

// SRL: rd = rt >>u shamt.
func (a *Asm) SRL(rd, rt, shamt int) { a.rtype(rd, 0, rt, shamt, fnSRL) }

// SRA: rd = rt >>s shamt.
func (a *Asm) SRA(rd, rt, shamt int) { a.rtype(rd, 0, rt, shamt, fnSRA) }

// SLLV: rd = rt << rs.
func (a *Asm) SLLV(rd, rt, rs int) { a.rtype(rd, rs, rt, 0, fnSLLV) }

// SRLV: rd = rt >>u rs.
func (a *Asm) SRLV(rd, rt, rs int) { a.rtype(rd, rs, rt, 0, fnSRLV) }

// SRAV: rd = rt >>s rs.
func (a *Asm) SRAV(rd, rt, rs int) { a.rtype(rd, rs, rt, 0, fnSRAV) }

// JR jumps to the address in rs.
func (a *Asm) JR(rs int) { a.rtype(0, rs, 0, 0, fnJR) }

// MULT: {HI,LO} = rs * rt via the hardware multiplier.
func (a *Asm) MULT(rs, rt int) { a.rtype(0, rs, rt, 0, fnMULT) }

// MULTU: unsigned multiply.
func (a *Asm) MULTU(rs, rt int) { a.rtype(0, rs, rt, 0, fnMULTU) }

// MFLO: rd = LO.
func (a *Asm) MFLO(rd int) { a.rtype(rd, 0, 0, 0, fnMFLO) }

// MFHI: rd = HI.
func (a *Asm) MFHI(rd int) { a.rtype(rd, 0, 0, 0, fnMFHI) }

func (a *Asm) itype(op uint32, rt, rs int, imm int32) {
	checkReg(rt)
	checkReg(rs)
	if !isa.FitsSigned(int64(imm), 16) && uint32(imm) > 0xFFFF && a.err == nil {
		a.err = fmt.Errorf("mips: immediate %d out of 16-bit range", imm)
	}
	a.emit(EncodeI(op, uint32(rs), uint32(rt), uint16(imm)))
}

// ADDI: rt = rs + imm.
func (a *Asm) ADDI(rt, rs int, imm int32) { a.itype(opADDI, rt, rs, imm) }

// ADDIU: rt = rs + imm (no trap).
func (a *Asm) ADDIU(rt, rs int, imm int32) { a.itype(opADDIU, rt, rs, imm) }

// SLTI: rt = (rs <s imm).
func (a *Asm) SLTI(rt, rs int, imm int32) { a.itype(opSLTI, rt, rs, imm) }

// SLTIU: rt = (rs <u imm).
func (a *Asm) SLTIU(rt, rs int, imm int32) { a.itype(opSLTIU, rt, rs, imm) }

// ANDI: rt = rs & imm (zero-extended).
func (a *Asm) ANDI(rt, rs int, imm int32) { a.itype(opANDI, rt, rs, imm) }

// ORI: rt = rs | imm (zero-extended).
func (a *Asm) ORI(rt, rs int, imm int32) { a.itype(opORI, rt, rs, imm) }

// XORI: rt = rs ^ imm (zero-extended).
func (a *Asm) XORI(rt, rs int, imm int32) { a.itype(opXORI, rt, rs, imm) }

// LUI: rt = imm << 16.
func (a *Asm) LUI(rt int, imm uint16) { a.itype(opLUI, rt, 0, int32(imm)) }

// LW: rt = mem[rs + imm].
func (a *Asm) LW(rt, rs int, imm int32) { a.itype(opLW, rt, rs, imm) }

// SW: mem[rs + imm] = rt.
func (a *Asm) SW(rt, rs int, imm int32) { a.itype(opSW, rt, rs, imm) }

func (a *Asm) branch(op uint32, rs, rt int, label string) {
	checkReg(rs)
	checkReg(rt)
	a.labels.Fixups = append(a.labels.Fixups, isa.Fixup{
		Word: len(a.words), Label: label,
		Apply: func(word uint64, target, instr uint32) (uint64, error) {
			off := (int64(target) - int64(instr) - 4) / 4
			if !isa.FitsSigned(off, 16) {
				return 0, fmt.Errorf("branch offset %d out of range", off)
			}
			return word&^0xFFFF | uint64(uint16(off)), nil
		},
	})
	a.emit(EncodeI(op, uint32(rs), uint32(rt), 0))
}

// BEQ branches to label when rs == rt. This implementation of bm32 has no
// branch delay slot.
func (a *Asm) BEQ(rs, rt int, label string) { a.branch(opBEQ, rs, rt, label) }

// BNE branches to label when rs != rt.
func (a *Asm) BNE(rs, rt int, label string) { a.branch(opBNE, rs, rt, label) }

func (a *Asm) jump(op uint32, label string) {
	a.labels.Fixups = append(a.labels.Fixups, isa.Fixup{
		Word: len(a.words), Label: label,
		Apply: func(word uint64, target, instr uint32) (uint64, error) {
			return uint64(EncodeJ(op, target)), nil
		},
	})
	a.emit(EncodeJ(op, 0))
}

// J jumps to label.
func (a *Asm) J(label string) { a.jump(opJ, label) }

// JAL jumps to label and writes the return address to $ra.
func (a *Asm) JAL(label string) { a.jump(opJAL, label) }

// Halt emits the terminating jump-to-self.
func (a *Asm) Halt() {
	here := fmt.Sprintf(".halt%d", len(a.words))
	a.Label(here)
	a.J(here)
}

// LI loads a 32-bit constant (LUI+ORI, or one instruction when it fits).
func (a *Asm) LI(rt int, v int32) {
	switch {
	case isa.FitsSigned(int64(v), 16):
		a.ADDIU(rt, ZERO, v)
	case uint32(v)&0xFFFF == 0:
		a.LUI(rt, uint16(uint32(v)>>16))
	default:
		a.LUI(rt, uint16(uint32(v)>>16))
		a.ORI(rt, rt, int32(uint32(v)&0xFFFF))
	}
}

// NOP emits sll $0, $0, 0.
func (a *Asm) NOP() { a.emit(0) }

// Assemble resolves labels and returns the image.
func (a *Asm) Assemble() (*isa.Image, error) {
	if a.err != nil {
		return nil, a.err
	}
	err := a.labels.Resolve(
		func(w int) uint32 { return uint32(w) * 4 },
		func(w int) uint64 { return uint64(a.words[w]) },
		func(w int, v uint64) { a.words[w] = uint32(v) },
	)
	if err != nil {
		return nil, err
	}
	img := &isa.Image{Data: a.data, XWords: a.xwords, Symbols: a.labels.Defs}
	for _, w := range a.words {
		img.ROM = append(img.ROM, isa.VecOf(32, uint64(w)))
	}
	return img, nil
}

// MustAssemble is Assemble that panics on error.
func (a *Asm) MustAssemble() *isa.Image {
	img, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return img
}
