package mips

import (
	"strings"
	"testing"
)

func TestDisasmGolden(t *testing.T) {
	cases := []struct {
		build func(a *Asm)
		want  string
	}{
		{func(a *Asm) { a.ADDU(T2, T0, T1) }, "addu $10, $8, $9"},
		{func(a *Asm) { a.SLL(T2, T1, 4) }, "sll $10, $9, 4"},
		{func(a *Asm) { a.JR(RA) }, "jr $31"},
		{func(a *Asm) { a.MULTU(T0, T1) }, "multu $8, $9"},
		{func(a *Asm) { a.MFLO(T2) }, "mflo $10"},
		{func(a *Asm) { a.ADDIU(T0, ZERO, -5) }, "addiu $8, $0, -5"},
		{func(a *Asm) { a.ORI(T0, ZERO, 0xBEEF) }, "ori $8, $0, 0xbeef"},
		{func(a *Asm) { a.LUI(T0, 0x1234) }, "lui $8, 0x1234"},
		{func(a *Asm) { a.LW(T0, SP, -8) }, "lw $8, -8($29)"},
		{func(a *Asm) { a.SW(T0, SP, 12) }, "sw $8, 12($29)"},
		{func(a *Asm) { a.NOP() }, "nop"},
	}
	for i, c := range cases {
		got := Disasm(word(t, c.build))
		if got != c.want {
			t.Errorf("case %d: %q, want %q", i, got, c.want)
		}
	}
}

func TestDisasmCoversAllEmitters(t *testing.T) {
	a := NewAsm()
	a.ADD(T0, T0, T1)
	a.SUB(T0, T0, T1)
	a.SUBU(T0, T0, T1)
	a.AND(T0, T0, T1)
	a.OR(T0, T0, T1)
	a.XOR(T0, T0, T1)
	a.NOR(T0, T0, T1)
	a.SLT(T0, T0, T1)
	a.SLTU(T0, T0, T1)
	a.SRL(T0, T1, 2)
	a.SRA(T0, T1, 2)
	a.SLLV(T0, T1, T2)
	a.SRLV(T0, T1, T2)
	a.SRAV(T0, T1, T2)
	a.MFHI(T0)
	a.MULT(T0, T1)
	a.ADDI(T0, T0, 1)
	a.SLTI(T0, T0, 1)
	a.SLTIU(T0, T0, 1)
	a.XORI(T0, T0, 1)
	a.BEQ(T0, T1, "l")
	a.BNE(T0, T1, "l")
	a.Label("l")
	a.J("l")
	a.JAL("l")
	img := a.MustAssemble()
	for i, w := range img.ROM {
		v, _ := w.Uint64()
		if s := Disasm(uint32(v)); strings.HasPrefix(s, ".word") {
			t.Errorf("instruction %d (%#08x) not disassembled", i, v)
		}
	}
	if s := Disasm(0xFC000000); !strings.HasPrefix(s, ".word") {
		t.Errorf("garbage disassembled as %q", s)
	}
}
