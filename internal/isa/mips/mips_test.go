package mips

import (
	"strings"
	"testing"
)

func word(t *testing.T, build func(a *Asm)) uint32 {
	t.Helper()
	a := NewAsm()
	build(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := img.ROM[0].Uint64()
	return uint32(v)
}

func TestGoldenEncodings(t *testing.T) {
	// Cross-checked against the MIPS32 reference encodings.
	cases := []struct {
		build func(a *Asm)
		want  uint32
	}{
		{func(a *Asm) { a.ADDU(T2, T0, T1) }, 0x01095021}, // addu $10,$8,$9
		{func(a *Asm) { a.SUBU(T2, T0, T1) }, 0x01095023},
		{func(a *Asm) { a.AND(T2, T0, T1) }, 0x01095024},
		{func(a *Asm) { a.OR(T2, T0, T1) }, 0x01095025},
		{func(a *Asm) { a.SLT(T2, T0, T1) }, 0x0109502A},
		{func(a *Asm) { a.SLL(T2, T1, 4) }, 0x00095100}, // sll $10,$9,4
		{func(a *Asm) { a.JR(RA) }, 0x03E00008},
		{func(a *Asm) { a.MULTU(T0, T1) }, 0x01090019},
		{func(a *Asm) { a.MFLO(T2) }, 0x00005012},
		{func(a *Asm) { a.MFHI(T2) }, 0x00005010},
		{func(a *Asm) { a.ADDIU(T0, ZERO, 100) }, 0x24080064},
		{func(a *Asm) { a.ORI(T0, ZERO, 0xFFFF) }, 0x3408FFFF},
		{func(a *Asm) { a.LUI(T0, 0x1234) }, 0x3C081234},
		{func(a *Asm) { a.LW(T0, SP, 16) }, 0x8FA80010},
		{func(a *Asm) { a.SW(T0, SP, 16) }, 0xAFA80010},
	}
	for i, c := range cases {
		if got := word(t, c.build); got != c.want {
			t.Errorf("case %d: %#08x, want %#08x", i, got, c.want)
		}
	}
}

func TestBranchOffsets(t *testing.T) {
	// Backward branch: offset counted from the delay-slot-free PC+4.
	a := NewAsm()
	a.Label("top")
	a.NOP()
	a.BNE(T0, ZERO, "top")
	img := a.MustAssemble()
	w, _ := img.ROM[1].Uint64()
	if off := int16(w & 0xFFFF); off != -2 {
		t.Errorf("backward offset = %d, want -2", off)
	}
	// Forward branch.
	b := NewAsm()
	b.BEQ(T0, T1, "fwd")
	b.NOP()
	b.NOP()
	b.Label("fwd")
	img = b.MustAssemble()
	w, _ = img.ROM[0].Uint64()
	if off := int16(w & 0xFFFF); off != 2 {
		t.Errorf("forward offset = %d, want 2", off)
	}
}

func TestJumpTargetEncoding(t *testing.T) {
	a := NewAsm()
	a.NOP()
	a.J("dst")
	a.NOP()
	a.Label("dst")
	img := a.MustAssemble()
	w, _ := img.ROM[1].Uint64()
	if tgt := uint32(w) & 0x03FFFFFF; tgt != 12/4 {
		t.Errorf("jump target field = %d, want 3", tgt)
	}
	if op := uint32(w) >> 26; op != 0x02 {
		t.Errorf("opcode = %#x", op)
	}
}

func TestLIStrategies(t *testing.T) {
	// Small positive: one ADDIU.
	a := NewAsm()
	a.LI(T0, 42)
	if len(a.MustAssemble().ROM) != 1 {
		t.Error("small LI should be one instruction")
	}
	// Upper-only: one LUI.
	b := NewAsm()
	b.LI(T0, 0x12340000)
	if len(b.MustAssemble().ROM) != 1 {
		t.Error("upper LI should be one instruction")
	}
	// Full 32-bit: LUI+ORI.
	c := NewAsm()
	c.LI(T0, 0x12345678)
	if len(c.MustAssemble().ROM) != 2 {
		t.Error("full LI should be two instructions")
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAsm()
	a.J("nowhere")
	if _, err := a.Assemble(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("undefined label: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("register 32 accepted")
		}
	}()
	b := NewAsm()
	b.ADDU(32, 0, 0)
}

func TestDataSegmentHelpers(t *testing.T) {
	a := NewAsm()
	a.Word(3, 0xDEADBEEF)
	a.XWord(7)
	a.NOP()
	img := a.MustAssemble()
	v, ok := img.Data[3].Uint64()
	if !ok || v != 0xDEADBEEF {
		t.Errorf("data word = %#x", v)
	}
	if len(img.XWords) != 1 || img.XWords[0] != 7 {
		t.Errorf("xwords = %v", img.XWords)
	}
}
