package mips

import "fmt"

// Disasm renders one encoded instruction for debugging and test oracles.
// Unknown encodings render as ".word 0x...".
func Disasm(w uint32) string {
	op := w >> 26
	rs := w >> 21 & 0x1F
	rt := w >> 16 & 0x1F
	rd := w >> 11 & 0x1F
	sh := w >> 6 & 0x1F
	funct := w & 0x3F
	imm := int16(w & 0xFFFF)
	uimm := w & 0xFFFF

	if w == 0 {
		return "nop"
	}
	switch op {
	case opSPECIAL:
		switch funct {
		case fnSLL:
			return fmt.Sprintf("sll $%d, $%d, %d", rd, rt, sh)
		case fnSRL:
			return fmt.Sprintf("srl $%d, $%d, %d", rd, rt, sh)
		case fnSRA:
			return fmt.Sprintf("sra $%d, $%d, %d", rd, rt, sh)
		case fnSLLV:
			return fmt.Sprintf("sllv $%d, $%d, $%d", rd, rt, rs)
		case fnSRLV:
			return fmt.Sprintf("srlv $%d, $%d, $%d", rd, rt, rs)
		case fnSRAV:
			return fmt.Sprintf("srav $%d, $%d, $%d", rd, rt, rs)
		case fnJR:
			return fmt.Sprintf("jr $%d", rs)
		case fnMFHI:
			return fmt.Sprintf("mfhi $%d", rd)
		case fnMFLO:
			return fmt.Sprintf("mflo $%d", rd)
		case fnMULT:
			return fmt.Sprintf("mult $%d, $%d", rs, rt)
		case fnMULTU:
			return fmt.Sprintf("multu $%d, $%d", rs, rt)
		case fnADD:
			return rform("add", rd, rs, rt)
		case fnADDU:
			return rform("addu", rd, rs, rt)
		case fnSUB:
			return rform("sub", rd, rs, rt)
		case fnSUBU:
			return rform("subu", rd, rs, rt)
		case fnAND:
			return rform("and", rd, rs, rt)
		case fnOR:
			return rform("or", rd, rs, rt)
		case fnXOR:
			return rform("xor", rd, rs, rt)
		case fnNOR:
			return rform("nor", rd, rs, rt)
		case fnSLT:
			return rform("slt", rd, rs, rt)
		case fnSLTU:
			return rform("sltu", rd, rs, rt)
		}
	case opJ:
		return fmt.Sprintf("j 0x%x", w&0x03FFFFFF<<2)
	case opJAL:
		return fmt.Sprintf("jal 0x%x", w&0x03FFFFFF<<2)
	case opBEQ:
		return fmt.Sprintf("beq $%d, $%d, %d", rs, rt, imm)
	case opBNE:
		return fmt.Sprintf("bne $%d, $%d, %d", rs, rt, imm)
	case opADDI:
		return iform("addi", rt, rs, int32(imm))
	case opADDIU:
		return iform("addiu", rt, rs, int32(imm))
	case opSLTI:
		return iform("slti", rt, rs, int32(imm))
	case opSLTIU:
		return iform("sltiu", rt, rs, int32(imm))
	case opANDI:
		return fmt.Sprintf("andi $%d, $%d, 0x%x", rt, rs, uimm)
	case opORI:
		return fmt.Sprintf("ori $%d, $%d, 0x%x", rt, rs, uimm)
	case opXORI:
		return fmt.Sprintf("xori $%d, $%d, 0x%x", rt, rs, uimm)
	case opLUI:
		return fmt.Sprintf("lui $%d, 0x%x", rt, uimm)
	case opLW:
		return fmt.Sprintf("lw $%d, %d($%d)", rt, imm, rs)
	case opSW:
		return fmt.Sprintf("sw $%d, %d($%d)", rt, imm, rs)
	}
	return fmt.Sprintf(".word 0x%08x", w)
}

func rform(name string, rd, rs, rt uint32) string {
	return fmt.Sprintf("%s $%d, $%d, $%d", name, rd, rs, rt)
}

func iform(name string, rt, rs uint32, imm int32) string {
	return fmt.Sprintf("%s $%d, $%d, %d", name, rt, rs, imm)
}
