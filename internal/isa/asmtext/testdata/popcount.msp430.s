; population count of 0xB7 on openMSP430; result at data word 0.
        wdtoff
        mov  #0xB7, r4       ; value
        mov  #0, r5          ; count
        mov  #8, r6          ; bits
loop:   bit  #1, r4
        jz   skip
        add  #1, r5
skip:   rra  r4
        and  #0x7FFF, r4     ; logical shift: clear the replicated sign
        sub  #1, r6
        jnz  loop
        mov  r5, &0x0200
        halt
