# gcd(48, 36) on bm32 by repeated subtraction; result at data word 0.
        li    $t0, 48
        li    $t1, 36
loop:   beq   $t0, $t1, done
        sltu  $t2, $t0, $t1
        bne   $t2, $zero, swap
        subu  $t0, $t0, $t1
        j     loop
swap:   subu  $t1, $t1, $t0
        j     loop
done:   sw    $t0, 0($zero)
        halt
