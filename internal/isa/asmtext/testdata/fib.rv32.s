; fib(10) on dr5: iterative Fibonacci, result at data word 0.
        li   t0, 10          ; n
        li   t1, 0           ; a
        li   t2, 1           ; b
loop:   add  a0, t1, t2      ; a+b
        add  t1, t2, zero    ; a = b
        add  t2, a0, zero    ; b = a+b
        addi t0, t0, -1
        bne  t0, zero, loop
        sw   t1, 0(zero)
        halt
