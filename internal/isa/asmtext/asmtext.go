// Package asmtext is the textual assembler front end: it parses assembly
// source for any of the three evaluation ISAs and drives the corresponding
// builder API, producing the same loadable images the built-in benchmarks
// use. This is what makes the toolchain usable standalone — the paper's
// flow takes an "application binary", and this package lets a user write
// one as a .s file.
//
// Common syntax:
//
//	; comment        # comment        // comment
//	label:
//	        <mnemonic> <operands>     ; instruction (ISA-specific operands)
//	.word  <index> <value>            ; initialize data-memory word
//	.xword <index>                    ; mark data word as application input
//
// Mnemonics are case-insensitive. Numbers accept decimal, 0x hex and
// -negatives. See the per-ISA operand grammars on AssembleRV32,
// AssembleMIPS and AssembleMSP430.
package asmtext

import (
	"fmt"
	"strconv"
	"strings"
)

// line is one parsed source line.
type line struct {
	no     int
	label  string
	mnem   string
	ops    []string
	isDir  bool
	rawOps string
}

// parse splits source text into logical lines. hashComments controls
// whether '#' starts a comment (it does for RV32/MIPS; MSP430 uses '#'
// for immediate operands).
func parse(src string, hashComments bool) ([]line, error) {
	markers := []string{";", "//"}
	if hashComments {
		markers = append(markers, "#")
	}
	var out []line
	for no, raw := range strings.Split(src, "\n") {
		l := raw
		for _, marker := range markers {
			if i := strings.Index(l, marker); i >= 0 {
				l = l[:i]
			}
		}
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		ln := line{no: no + 1}
		// Leading label(s).
		for {
			if i := strings.Index(l, ":"); i >= 0 && !strings.ContainsAny(l[:i], " \t") {
				if ln.label != "" {
					out = append(out, ln)
					ln = line{no: no + 1}
				}
				ln.label = strings.TrimSpace(l[:i])
				l = strings.TrimSpace(l[i+1:])
				continue
			}
			break
		}
		if l != "" {
			fields := strings.Fields(l)
			ln.mnem = strings.ToLower(fields[0])
			ln.isDir = strings.HasPrefix(ln.mnem, ".")
			ln.rawOps = strings.TrimSpace(strings.TrimPrefix(l, fields[0]))
			if ln.rawOps != "" {
				for _, op := range strings.Split(ln.rawOps, ",") {
					ln.ops = append(ln.ops, strings.TrimSpace(op))
				}
			}
		}
		if ln.label != "" || ln.mnem != "" {
			out = append(out, ln)
		}
	}
	return out, nil
}

func (l line) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: "+format, append([]any{l.no}, args...)...)
}

func (l line) wantOps(n int) error {
	if len(l.ops) != n {
		return l.errf("%s expects %d operands, got %d", l.mnem, n, len(l.ops))
	}
	return nil
}

// dirFields returns the whitespace-separated operands of a directive.
func (l line) dirFields() []string { return strings.Fields(l.rawOps) }

// num parses a decimal or 0x-hex integer.
func num(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	base := 10
	if strings.HasPrefix(strings.ToLower(s), "0x") {
		base = 16
		s = s[2:]
	}
	v, err := strconv.ParseInt(s, base, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

// memOperand parses "offset(reg)" returning the offset text and reg text.
func memOperand(s string) (off, reg string, ok bool) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", "", false
	}
	return strings.TrimSpace(s[:open]), strings.TrimSpace(s[open+1 : len(s)-1]), true
}
