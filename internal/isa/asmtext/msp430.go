package asmtext

import (
	"fmt"
	"strings"

	"symsim/internal/isa"
	"symsim/internal/isa/msp430"
)

func msp430Reg(l line, s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	var r int
	if _, err := fmt.Sscanf(s, "r%d", &r); err != nil || r < 0 || r > 15 || fmt.Sprintf("r%d", r) != s {
		return 0, l.errf("bad register %q", s)
	}
	return r, nil
}

// msp430Operand classifies a Format I operand.
type msp430Operand struct {
	kind byte // 'r' register, 'i' #imm, 'm' off(rn), 'a' &abs
	reg  int
	val  int64
}

func msp430ParseOp(l line, s string) (msp430Operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "#"):
		v, err := num(s[1:])
		if err != nil {
			return msp430Operand{}, l.errf("bad immediate %q", s)
		}
		return msp430Operand{kind: 'i', val: v}, nil
	case strings.HasPrefix(s, "&"):
		v, err := num(s[1:])
		if err != nil {
			return msp430Operand{}, l.errf("bad absolute address %q", s)
		}
		return msp430Operand{kind: 'a', val: v}, nil
	default:
		if offS, baseS, ok := memOperand(s); ok {
			off := int64(0)
			var err error
			if offS != "" {
				if off, err = num(offS); err != nil {
					return msp430Operand{}, l.errf("bad offset %q", offS)
				}
			}
			base, err := msp430Reg(l, baseS)
			if err != nil {
				return msp430Operand{}, err
			}
			return msp430Operand{kind: 'm', reg: base, val: off}, nil
		}
		r, err := msp430Reg(l, s)
		if err != nil {
			return msp430Operand{}, err
		}
		return msp430Operand{kind: 'r', reg: r}, nil
	}
}

// AssembleMSP430 assembles MSP430 source. Operand grammar (word ops only):
//
//	mov  r4, r5                  ; two-operand: mov add addc sub subc cmp
//	add  #10, r5                 ;   bit bic bis xor and
//	mov  4(r6), r7               ; indexed source
//	mov  r7, 4(r6)               ; indexed destination
//	mov  &0x0200, r4             ; absolute via the zeroed r3 base
//	mov  r4, &0x0200
//	rra  r4                      ; one-operand: rra rrc swpb sxt
//	jne  label                   ; jumps: jne/jnz jeq/jz jnc jc jn jge jl jmp
//	halt                         ; jmp-to-self terminator
//	wdtoff                       ; the canonical watchdog-disable prologue
func AssembleMSP430(src string) (*isa.Image, error) {
	lines, err := parse(src, false)
	if err != nil {
		return nil, err
	}
	a := msp430.NewAsm()
	word16 := func(idx int, v uint32) { a.Word(idx, uint16(v)) }
	for _, l := range lines {
		if l.label != "" {
			a.Label(l.label)
		}
		if l.mnem == "" {
			continue
		}
		if l.isDir {
			if err := directive(word16, a.XWord, l); err != nil {
				return nil, err
			}
			continue
		}
		if err := msp430Instr(a, l); err != nil {
			return nil, err
		}
	}
	return a.Assemble()
}

func msp430Instr(a *msp430.Asm, l line) error {
	twoOp := map[string]int{
		"mov": msp430.OpMOV, "add": msp430.OpADD, "addc": msp430.OpADDC,
		"sub": msp430.OpSUB, "subc": msp430.OpSUBC, "cmp": msp430.OpCMP,
		"bit": msp430.OpBIT, "bic": msp430.OpBIC, "bis": msp430.OpBIS,
		"xor": msp430.OpXOR, "and": msp430.OpAND,
	}
	oneOp := map[string]func(int){"rra": a.RRA, "rrc": a.RRC, "swpb": a.SWPB, "sxt": a.SXT}
	jumps := map[string]func(string){
		"jne": a.JNE, "jnz": a.JNE, "jeq": a.JEQ, "jz": a.JEQ,
		"jnc": a.JNC, "jc": a.JC, "jn": a.JN, "jge": a.JGE, "jl": a.JL, "jmp": a.JMP,
	}

	switch {
	case twoOp[l.mnem] != 0:
		if err := l.wantOps(2); err != nil {
			return err
		}
		src, err := msp430ParseOp(l, l.ops[0])
		if err != nil {
			return err
		}
		dst, err := msp430ParseOp(l, l.ops[1])
		if err != nil {
			return err
		}
		return msp430Emit(a, l, twoOp[l.mnem], src, dst)
	case oneOp[l.mnem] != nil:
		if err := l.wantOps(1); err != nil {
			return err
		}
		r, err := msp430Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		oneOp[l.mnem](r)
	case jumps[l.mnem] != nil:
		if err := l.wantOps(1); err != nil {
			return err
		}
		jumps[l.mnem](l.ops[0])
	case l.mnem == "halt":
		a.Halt()
	case l.mnem == "wdtoff":
		a.DisableWatchdog()
	default:
		return l.errf("unknown mnemonic %q", l.mnem)
	}
	return nil
}

// msp430Emit dispatches a two-operand instruction to the builder. The
// builder supports one extension word per instruction, so immediate or
// memory sources combine only with register destinations and vice versa.
// Absolute operands lower to indexed mode off the zeroed r3.
func msp430Emit(a *msp430.Asm, l line, op int, src, dst msp430Operand) error {
	if src.kind == 'a' {
		src = msp430Operand{kind: 'm', reg: msp430.R3, val: src.val}
	}
	if dst.kind == 'a' {
		dst = msp430Operand{kind: 'm', reg: msp430.R3, val: dst.val}
	}
	if src.kind != 'r' && dst.kind != 'r' {
		return l.errf("at most one memory/immediate operand per instruction")
	}
	emitRR := map[int]func(int, int){
		msp430.OpMOV: a.MOV, msp430.OpADD: a.ADD, msp430.OpADDC: a.ADDC,
		msp430.OpSUB: a.SUB, msp430.OpSUBC: a.SUBC, msp430.OpCMP: a.CMP,
		msp430.OpBIT: a.BIT, msp430.OpBIC: a.BIC, msp430.OpBIS: a.BIS,
		msp430.OpXOR: a.XOR, msp430.OpAND: a.AND,
	}
	emitRI := map[int]func(int32, int){
		msp430.OpMOV: a.MOVI, msp430.OpADD: a.ADDI, msp430.OpSUB: a.SUBI,
		msp430.OpCMP: a.CMPI, msp430.OpBIT: a.BITI, msp430.OpBIC: a.BICI,
		msp430.OpBIS: a.BISI, msp430.OpXOR: a.XORI, msp430.OpAND: a.ANDI,
	}
	emitRM := map[int]func(int32, int, int){
		msp430.OpMOV: a.MOVM, msp430.OpADD: a.ADDM, msp430.OpSUB: a.SUBM,
		msp430.OpCMP: a.CMPM,
	}
	switch {
	case src.kind == 'r' && dst.kind == 'r':
		emitRR[op](src.reg, dst.reg)
	case src.kind == 'i' && dst.kind == 'r':
		f, ok := emitRI[op]
		if !ok {
			return l.errf("immediate source unsupported for this mnemonic")
		}
		f(int32(src.val), dst.reg)
	case src.kind == 'm' && dst.kind == 'r':
		f, ok := emitRM[op]
		if !ok {
			return l.errf("indexed source unsupported for this mnemonic")
		}
		f(int32(src.val), src.reg, dst.reg)
	case src.kind == 'r' && dst.kind == 'm':
		switch op {
		case msp430.OpMOV:
			a.MOVRM(src.reg, int32(dst.val), dst.reg)
		case msp430.OpADD:
			a.ADDRM(src.reg, int32(dst.val), dst.reg)
		default:
			return l.errf("indexed destination unsupported for this mnemonic")
		}
	default:
		return l.errf("unsupported operand combination")
	}
	return nil
}
