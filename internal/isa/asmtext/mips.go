package asmtext

import (
	"fmt"
	"strings"

	"symsim/internal/isa"
	"symsim/internal/isa/mips"
)

// mipsRegs maps "$0".."$31" and the conventional names to numbers.
var mipsRegs = func() map[string]int {
	m := map[string]int{}
	names := []string{"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
		"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
		"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
		"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra"}
	for i, name := range names {
		m["$"+name] = i
		m[fmt.Sprintf("$%d", i)] = i
	}
	return m
}()

func mipsReg(l line, s string) (int, error) {
	r, ok := mipsRegs[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, l.errf("bad register %q", s)
	}
	return r, nil
}

// AssembleMIPS assembles MIPS32 source. Operand grammar:
//
//	addu $rd, $rs, $rt           ; r-type: add addu sub subu and or xor nor slt sltu
//	sll  $rd, $rt, shamt         ; shifts: sll srl sra
//	sllv $rd, $rt, $rs           ; variable shifts: sllv srlv srav
//	addiu $rt, $rs, imm          ; i-type: addi addiu slti sltiu andi ori xori
//	lui  $rt, imm
//	lw   $rt, off($rs)           ; also sw
//	beq  $rs, $rt, label         ; also bne
//	j    label / jal label / jr $rs
//	mult $rs, $rt / multu / mflo $rd / mfhi $rd
//	li   $rt, imm                ; pseudo
//	nop / halt
func AssembleMIPS(src string) (*isa.Image, error) {
	lines, err := parse(src, true)
	if err != nil {
		return nil, err
	}
	a := mips.NewAsm()
	for _, l := range lines {
		if l.label != "" {
			a.Label(l.label)
		}
		if l.mnem == "" {
			continue
		}
		if l.isDir {
			if err := directive(a.Word, a.XWord, l); err != nil {
				return nil, err
			}
			continue
		}
		if err := mipsInstr(a, l); err != nil {
			return nil, err
		}
	}
	return a.Assemble()
}

func mipsInstr(a *mips.Asm, l line) error {
	rrr := map[string]func(rd, rs, rt int){
		"add": a.ADD, "addu": a.ADDU, "sub": a.SUB, "subu": a.SUBU,
		"and": a.AND, "or": a.OR, "xor": a.XOR, "nor": a.NOR,
		"slt": a.SLT, "sltu": a.SLTU,
	}
	shImm := map[string]func(rd, rt, sh int){"sll": a.SLL, "srl": a.SRL, "sra": a.SRA}
	shVar := map[string]func(rd, rt, rs int){"sllv": a.SLLV, "srlv": a.SRLV, "srav": a.SRAV}
	rri := map[string]func(rt, rs int, imm int32){
		"addi": a.ADDI, "addiu": a.ADDIU, "slti": a.SLTI, "sltiu": a.SLTIU,
		"andi": a.ANDI, "ori": a.ORI, "xori": a.XORI,
	}

	regs := func(n int) ([]int, error) {
		if err := l.wantOps(n); err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := 0; i < n; i++ {
			r, err := mipsReg(l, l.ops[i])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	switch {
	case rrr[l.mnem] != nil:
		r, err := regs(3)
		if err != nil {
			return err
		}
		rrr[l.mnem](r[0], r[1], r[2])
	case shImm[l.mnem] != nil:
		if err := l.wantOps(3); err != nil {
			return err
		}
		rd, err := mipsReg(l, l.ops[0])
		if err != nil {
			return err
		}
		rt, err := mipsReg(l, l.ops[1])
		if err != nil {
			return err
		}
		sh, err := num(l.ops[2])
		if err != nil || sh < 0 || sh > 31 {
			return l.errf("bad shift amount %q", l.ops[2])
		}
		shImm[l.mnem](rd, rt, int(sh))
	case shVar[l.mnem] != nil:
		r, err := regs(3)
		if err != nil {
			return err
		}
		shVar[l.mnem](r[0], r[1], r[2])
	case rri[l.mnem] != nil:
		if err := l.wantOps(3); err != nil {
			return err
		}
		rt, err := mipsReg(l, l.ops[0])
		if err != nil {
			return err
		}
		rs, err := mipsReg(l, l.ops[1])
		if err != nil {
			return err
		}
		imm, err := num(l.ops[2])
		if err != nil {
			return l.errf("bad immediate %q", l.ops[2])
		}
		rri[l.mnem](rt, rs, int32(imm))
	case l.mnem == "lui":
		if err := l.wantOps(2); err != nil {
			return err
		}
		rt, err := mipsReg(l, l.ops[0])
		if err != nil {
			return err
		}
		imm, err := num(l.ops[1])
		if err != nil {
			return l.errf("bad immediate %q", l.ops[1])
		}
		a.LUI(rt, uint16(imm))
	case l.mnem == "li":
		if err := l.wantOps(2); err != nil {
			return err
		}
		rt, err := mipsReg(l, l.ops[0])
		if err != nil {
			return err
		}
		imm, err := num(l.ops[1])
		if err != nil {
			return l.errf("bad immediate %q", l.ops[1])
		}
		a.LI(rt, int32(imm))
	case l.mnem == "lw" || l.mnem == "sw":
		if err := l.wantOps(2); err != nil {
			return err
		}
		rt, err := mipsReg(l, l.ops[0])
		if err != nil {
			return err
		}
		offS, baseS, ok := memOperand(l.ops[1])
		if !ok {
			return l.errf("bad memory operand %q", l.ops[1])
		}
		off := int64(0)
		if offS != "" {
			if off, err = num(offS); err != nil {
				return l.errf("bad offset %q", offS)
			}
		}
		base, err := mipsReg(l, baseS)
		if err != nil {
			return err
		}
		if l.mnem == "lw" {
			a.LW(rt, base, int32(off))
		} else {
			a.SW(rt, base, int32(off))
		}
	case l.mnem == "beq" || l.mnem == "bne":
		if err := l.wantOps(3); err != nil {
			return err
		}
		rs, err := mipsReg(l, l.ops[0])
		if err != nil {
			return err
		}
		rt, err := mipsReg(l, l.ops[1])
		if err != nil {
			return err
		}
		if l.mnem == "beq" {
			a.BEQ(rs, rt, l.ops[2])
		} else {
			a.BNE(rs, rt, l.ops[2])
		}
	case l.mnem == "j" || l.mnem == "jal":
		if err := l.wantOps(1); err != nil {
			return err
		}
		if l.mnem == "j" {
			a.J(l.ops[0])
		} else {
			a.JAL(l.ops[0])
		}
	case l.mnem == "jr":
		r, err := regs(1)
		if err != nil {
			return err
		}
		a.JR(r[0])
	case l.mnem == "mult" || l.mnem == "multu":
		r, err := regs(2)
		if err != nil {
			return err
		}
		if l.mnem == "mult" {
			a.MULT(r[0], r[1])
		} else {
			a.MULTU(r[0], r[1])
		}
	case l.mnem == "mflo" || l.mnem == "mfhi":
		r, err := regs(1)
		if err != nil {
			return err
		}
		if l.mnem == "mflo" {
			a.MFLO(r[0])
		} else {
			a.MFHI(r[0])
		}
	case l.mnem == "nop":
		a.NOP()
	case l.mnem == "halt":
		a.Halt()
	default:
		return l.errf("unknown mnemonic %q", l.mnem)
	}
	return nil
}
