package asmtext_test

import (
	"os"
	"strings"
	"testing"

	"symsim/internal/cpu/bm32"
	"symsim/internal/cpu/cputest"
	"symsim/internal/cpu/dr5"
	"symsim/internal/cpu/omsp430"
	"symsim/internal/isa/asmtext"
	"symsim/internal/vvp"
)

// The acid test: source-level programs assembled by the text front end run
// correctly on the gate-level cores.

func TestRV32SourceProgram(t *testing.T) {
	src := `
; sum 1..10, store at word 0
        li   t0, 10
        li   t1, 0
loop:   add  t1, t1, t0
        addi t0, t0, -1
        bne  t0, zero, loop
        sw   t1, 0(zero)
        # memory round trip with an offset
        li   a0, 0x1234
        sw   a0, 8(zero)
        lw   a1, 8(zero)
        addi a1, a1, 1
        sw   a1, 4(zero)
        halt
`
	img, err := asmtext.Assemble("rv32e", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dr5.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cputest.Run(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := cputest.MemUint(sim, "dmem", 0); v != 55 {
		t.Errorf("sum = %d", v)
	}
	if v, _ := cputest.MemUint(sim, "dmem", 1); v != 0x1235 {
		t.Errorf("round trip = %#x", v)
	}
}

func TestMIPSSourceProgram(t *testing.T) {
	src := `
        li    $t0, 6
        li    $t1, 7
        multu $t0, $t1
        mflo  $t2
        sw    $t2, 0($zero)
        slt   $t3, $t0, $t1
        sw    $t3, 4($zero)
        halt
`
	img, err := asmtext.Assemble("mips32", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bm32.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cputest.Run(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := cputest.MemUint(sim, "dmem", 0); v != 42 {
		t.Errorf("product = %d", v)
	}
	if v, _ := cputest.MemUint(sim, "dmem", 1); v != 1 {
		t.Errorf("slt = %d", v)
	}
}

func TestMSP430SourceProgram(t *testing.T) {
	src := `
        wdtoff
        mov  #21, r4
        add  r4, r4             ; 42
        mov  r4, &0x0200
        mov  #0x0200, r5
        mov  0(r5), r6          ; load back
        add  #1, r6
        mov  r6, &0x0202
        halt
`
	img, err := asmtext.Assemble("msp430", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := omsp430.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cputest.Run(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := cputest.MemUint(sim, "dmem", 0); v != 42 {
		t.Errorf("word0 = %d", v)
	}
	if v, _ := cputest.MemUint(sim, "dmem", 1); v != 43 {
		t.Errorf("word1 = %d", v)
	}
}

func TestDirectivesAndSymbolicInput(t *testing.T) {
	src := `
.xword 0
.word  1 0x55
        lw  t0, 0(zero)
        halt
`
	img, err := asmtext.Assemble("rv32e", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.XWords) != 1 || img.XWords[0] != 0 {
		t.Errorf("xwords = %v", img.XWords)
	}
	if v, ok := img.Data[1].Uint64(); !ok || v != 0x55 {
		t.Errorf("data[1] = %v", img.Data[1])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		isa, src, wantErr string
	}{
		{"rv32e", "frobnicate t0", "unknown mnemonic"},
		{"rv32e", "add t0, t1", "expects 3 operands"},
		{"rv32e", "add q9, t1, t2", "bad register"},
		{"rv32e", "addi t0, t1, banana", "bad immediate"},
		{"rv32e", "lw t0, t1", "bad memory operand"},
		{"mips32", "addu $t0, $t1", "expects 3 operands"},
		{"mips32", "addu $z9, $t1, $t2", "bad register"},
		{"msp430", "mov 2(r4), 4(r5)", "at most one"},
		{"msp430", "bic r4, 2(r5)", "unsupported"},
		{"msp430", "mov rr4, r5", "bad register"},
		{"vax", "nop", "unknown ISA"},
		{"rv32e", ".word 1", "expects 2 operands"},
		{"rv32e", ".frob 1", "unknown directive"},
		{"rv32e", "slli t0, t1, 99", "bad shift amount"},
		{"rv32e", "lui t0, banana", "bad immediate"},
		{"rv32e", "jalr t0, t1", "bad jalr operand"},
		{"rv32e", "sw t0, 4(q7)", "bad register"},
		{"rv32e", "beq t0, q9, lbl", "bad register"},
		{"mips32", "sll $t0, $t1, 44", "bad shift amount"},
		{"mips32", "lw $t0, 4[$sp]", "bad memory operand"},
		{"mips32", "li $t0, nope", "bad immediate"},
		{"mips32", "frob $t0", "unknown mnemonic"},
		{"msp430", "frob r4", "unknown mnemonic"},
		{"msp430", "rra 4(r5), r6", "expects 1 operands"},
		{"msp430", "mov #zzz, r4", "bad immediate"},
		{"msp430", "mov &zzz, r4", "bad absolute"},
		{"msp430", "add 2(rx), r4", "bad register"},
		{"msp430", "subc #1, r4", "immediate source unsupported"},
		{"rv32e", ".word q 1", "bad index"},
		{"rv32e", ".word 1 q", "bad value"},
		{"rv32e", ".xword q", "bad index"},
	}
	for i, c := range cases {
		_, err := asmtext.Assemble(c.isa, c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("case %d (%s): err = %v, want %q", i, c.src, err, c.wantErr)
		}
	}
}

func TestLabelsOnOwnLine(t *testing.T) {
	src := `
top:
        li t0, 1
        beq t0, t0, top2
        halt
top2:   halt
`
	if _, err := asmtext.Assemble("rv32e", src); err != nil {
		t.Fatal(err)
	}
}

// The shipped sample programs in testdata must assemble and compute their
// documented results on the gate-level cores.
func TestSamplePrograms(t *testing.T) {
	run := func(isaName, file string, want uint64) {
		t.Helper()
		src, err := os.ReadFile("testdata/" + file)
		if err != nil {
			t.Fatal(err)
		}
		img, err := asmtext.Assemble(isaName, string(src))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		var sim *vvp.Simulator
		switch isaName {
		case "rv32e":
			p, err := dr5.Build(img)
			if err != nil {
				t.Fatal(err)
			}
			sim, err = cputest.Run(p, 100000)
			if err != nil {
				t.Fatal(err)
			}
		case "mips32":
			p, err := bm32.Build(img)
			if err != nil {
				t.Fatal(err)
			}
			sim, err = cputest.Run(p, 100000)
			if err != nil {
				t.Fatal(err)
			}
		case "msp430":
			p, err := omsp430.Build(img)
			if err != nil {
				t.Fatal(err)
			}
			sim, err = cputest.Run(p, 100000)
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := cputest.MemUint(sim, "dmem", 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: result = %d, want %d", file, got, want)
		}
	}
	run("rv32e", "fib.rv32.s", 55)        // fib(10)
	run("mips32", "gcd.mips.s", 12)       // gcd(48, 36)
	run("msp430", "popcount.msp430.s", 6) // popcount(0xB7)
}
