package asmtext

import (
	"fmt"
	"strings"

	"symsim/internal/isa"
	"symsim/internal/isa/rv32"
)

// rv32Regs maps register operand spellings (numeric x0..x15 and RV32E ABI
// names) to register numbers.
var rv32Regs = func() map[string]int {
	m := map[string]int{}
	abi := []string{"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5"}
	for i, name := range abi {
		m[name] = i
		m[fmt.Sprintf("x%d", i)] = i
	}
	m["fp"] = 8
	return m
}()

func rv32Reg(l line, s string) (int, error) {
	r, ok := rv32Regs[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, l.errf("bad register %q", s)
	}
	return r, nil
}

// AssembleRV32 assembles RV32E source. Operand grammar:
//
//	add  rd, rs1, rs2            ; r-type: add sub sll slt sltu xor srl sra or and
//	addi rd, rs1, imm            ; i-type: addi slti sltiu xori ori andi
//	slli rd, rs1, shamt          ; shifts: slli srli srai
//	lui  rd, imm
//	lw   rd, off(rs1)
//	sw   rs2, off(rs1)
//	beq  rs1, rs2, label         ; branches: beq bne blt bge bltu bgeu
//	jal  rd, label
//	jalr rd, off(rs1)
//	li   rd, imm                 ; pseudo: expands to lui+addi as needed
//	nop / halt                   ; halt = jump-to-self terminator
func AssembleRV32(src string) (*isa.Image, error) {
	lines, err := parse(src, true)
	if err != nil {
		return nil, err
	}
	a := rv32.NewAsm()
	for _, l := range lines {
		if l.label != "" {
			a.Label(l.label)
		}
		if l.mnem == "" {
			continue
		}
		if l.isDir {
			if err := directive(a.Word, a.XWord, l); err != nil {
				return nil, err
			}
			continue
		}
		if err := rv32Instr(a, l); err != nil {
			return nil, err
		}
	}
	return a.Assemble()
}

func rv32Instr(a *rv32.Asm, l line) error {
	rrr := map[string]func(rd, rs1, rs2 int){
		"add": a.ADD, "sub": a.SUB, "sll": a.SLL, "slt": a.SLT, "sltu": a.SLTU,
		"xor": a.XOR, "srl": a.SRL, "sra": a.SRA, "or": a.OR, "and": a.AND,
	}
	rri := map[string]func(rd, rs1 int, imm int32){
		"addi": a.ADDI, "slti": a.SLTI, "sltiu": a.SLTIU,
		"xori": a.XORI, "ori": a.ORI, "andi": a.ANDI,
	}
	shift := map[string]func(rd, rs1, sh int){"slli": a.SLLI, "srli": a.SRLI, "srai": a.SRAI}
	branch := map[string]func(rs1, rs2 int, label string){
		"beq": a.BEQ, "bne": a.BNE, "blt": a.BLT, "bge": a.BGE,
		"bltu": a.BLTU, "bgeu": a.BGEU,
	}

	switch {
	case rrr[l.mnem] != nil:
		if err := l.wantOps(3); err != nil {
			return err
		}
		rd, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		rs1, err := rv32Reg(l, l.ops[1])
		if err != nil {
			return err
		}
		rs2, err := rv32Reg(l, l.ops[2])
		if err != nil {
			return err
		}
		rrr[l.mnem](rd, rs1, rs2)
	case rri[l.mnem] != nil:
		if err := l.wantOps(3); err != nil {
			return err
		}
		rd, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		rs1, err := rv32Reg(l, l.ops[1])
		if err != nil {
			return err
		}
		imm, err := num(l.ops[2])
		if err != nil {
			return l.errf("bad immediate %q", l.ops[2])
		}
		rri[l.mnem](rd, rs1, int32(imm))
	case shift[l.mnem] != nil:
		if err := l.wantOps(3); err != nil {
			return err
		}
		rd, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		rs1, err := rv32Reg(l, l.ops[1])
		if err != nil {
			return err
		}
		sh, err := num(l.ops[2])
		if err != nil || sh < 0 || sh > 31 {
			return l.errf("bad shift amount %q", l.ops[2])
		}
		shift[l.mnem](rd, rs1, int(sh))
	case branch[l.mnem] != nil:
		if err := l.wantOps(3); err != nil {
			return err
		}
		rs1, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		rs2, err := rv32Reg(l, l.ops[1])
		if err != nil {
			return err
		}
		branch[l.mnem](rs1, rs2, l.ops[2])
	case l.mnem == "lui":
		if err := l.wantOps(2); err != nil {
			return err
		}
		rd, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		imm, err := num(l.ops[1])
		if err != nil {
			return l.errf("bad immediate %q", l.ops[1])
		}
		a.LUI(rd, uint32(imm))
	case l.mnem == "li":
		if err := l.wantOps(2); err != nil {
			return err
		}
		rd, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		imm, err := num(l.ops[1])
		if err != nil {
			return l.errf("bad immediate %q", l.ops[1])
		}
		a.LI(rd, int32(imm))
	case l.mnem == "lw" || l.mnem == "sw":
		if err := l.wantOps(2); err != nil {
			return err
		}
		r1, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		offS, baseS, ok := memOperand(l.ops[1])
		if !ok {
			return l.errf("bad memory operand %q", l.ops[1])
		}
		off := int64(0)
		if offS != "" {
			if off, err = num(offS); err != nil {
				return l.errf("bad offset %q", offS)
			}
		}
		base, err := rv32Reg(l, baseS)
		if err != nil {
			return err
		}
		if l.mnem == "lw" {
			a.LW(r1, base, int32(off))
		} else {
			a.SW(r1, base, int32(off))
		}
	case l.mnem == "jal":
		if err := l.wantOps(2); err != nil {
			return err
		}
		rd, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		a.JAL(rd, l.ops[1])
	case l.mnem == "jalr":
		if err := l.wantOps(2); err != nil {
			return err
		}
		rd, err := rv32Reg(l, l.ops[0])
		if err != nil {
			return err
		}
		offS, baseS, ok := memOperand(l.ops[1])
		if !ok {
			return l.errf("bad jalr operand %q", l.ops[1])
		}
		off := int64(0)
		if offS != "" {
			if off, err = num(offS); err != nil {
				return l.errf("bad offset %q", offS)
			}
		}
		base, err := rv32Reg(l, baseS)
		if err != nil {
			return err
		}
		a.JALR(rd, base, int32(off))
	case l.mnem == "nop":
		a.NOP()
	case l.mnem == "halt":
		a.Halt()
	default:
		return l.errf("unknown mnemonic %q", l.mnem)
	}
	return nil
}

// directive handles .word and .xword for any ISA's builder. Directive
// operands are whitespace-separated.
func directive(word func(int, uint32), xword func(int), l line) error {
	f := l.dirFields()
	switch l.mnem {
	case ".word":
		if len(f) != 2 {
			return l.errf(".word expects 2 operands, got %d", len(f))
		}
		idx, err := num(f[0])
		if err != nil {
			return l.errf("bad index %q", f[0])
		}
		val, err := num(f[1])
		if err != nil {
			return l.errf("bad value %q", f[1])
		}
		word(int(idx), uint32(val))
	case ".xword":
		if len(f) != 1 {
			return l.errf(".xword expects 1 operand, got %d", len(f))
		}
		idx, err := num(f[0])
		if err != nil {
			return l.errf("bad index %q", f[0])
		}
		xword(int(idx))
	default:
		return l.errf("unknown directive %q", l.mnem)
	}
	return nil
}
