package asmtext

import (
	"fmt"

	"symsim/internal/isa"
)

// Assemble dispatches on the ISA name: "rv32e", "mips32" or "msp430"
// (matching internal/prog's ISA identifiers).
func Assemble(target, src string) (*isa.Image, error) {
	switch target {
	case "rv32e", "rv32", "riscv":
		return AssembleRV32(src)
	case "mips32", "mips":
		return AssembleMIPS(src)
	case "msp430":
		return AssembleMSP430(src)
	}
	return nil, fmt.Errorf("asmtext: unknown ISA %q (want rv32e, mips32 or msp430)", target)
}
