package msp430

import (
	"strings"
	"testing"
)

func words(t *testing.T, build func(a *Asm)) []uint16 {
	t.Helper()
	a := NewAsm()
	build(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint16, len(img.ROM))
	for i, w := range img.ROM {
		v, _ := w.Uint64()
		out[i] = uint16(v)
	}
	return out
}

func TestGoldenFormatIEncodings(t *testing.T) {
	// Cross-checked against the MSP430 instruction encoding tables.
	cases := []struct {
		build func(a *Asm)
		want  uint16
	}{
		{func(a *Asm) { a.MOV(R4, R5) }, 0x4405}, // MOV R4, R5
		{func(a *Asm) { a.ADD(R4, R5) }, 0x5405}, // ADD R4, R5
		{func(a *Asm) { a.SUB(R4, R5) }, 0x8405}, // SUB R4, R5
		{func(a *Asm) { a.CMP(R4, R5) }, 0x9405}, // CMP R4, R5
		{func(a *Asm) { a.XOR(R4, R5) }, 0xE405}, // XOR R4, R5
		{func(a *Asm) { a.AND(R4, R5) }, 0xF405}, // AND R4, R5
		{func(a *Asm) { a.BIS(R4, R5) }, 0xD405}, // BIS R4, R5
		{func(a *Asm) { a.BIC(R4, R5) }, 0xC405}, // BIC R4, R5
	}
	for i, c := range cases {
		got := words(t, c.build)
		if got[0] != c.want {
			t.Errorf("case %d: %#04x, want %#04x", i, got[0], c.want)
		}
	}
}

func TestImmediateModeUsesPCAutoincrement(t *testing.T) {
	got := words(t, func(a *Asm) { a.MOVI(0x1234, R5) })
	// MOV #imm, R5: opcode 4, src=R0, As=11 -> 0x4035; extension word.
	if got[0] != 0x4035 {
		t.Errorf("MOVI word 0 = %#04x, want 0x4035", got[0])
	}
	if got[1] != 0x1234 {
		t.Errorf("extension word = %#04x", got[1])
	}
}

func TestIndexedModes(t *testing.T) {
	got := words(t, func(a *Asm) { a.MOVM(6, R4, R5) })
	// MOV 6(R4), R5: As=01 -> 0x4415 + ext 6.
	if got[0] != 0x4415 || got[1] != 6 {
		t.Errorf("MOVM = %#04x %#04x", got[0], got[1])
	}
	got = words(t, func(a *Asm) { a.MOVRM(R5, 6, R4) })
	// MOV R5, 6(R4): Ad=1 -> 0x4584 + ext 6.
	if got[0] != 0x4584 || got[1] != 6 {
		t.Errorf("MOVRM = %#04x %#04x", got[0], got[1])
	}
}

func TestFormatIIEncodings(t *testing.T) {
	cases := []struct {
		build func(a *Asm)
		want  uint16
	}{
		{func(a *Asm) { a.RRC(R4) }, 0x1004},
		{func(a *Asm) { a.SWPB(R4) }, 0x1084},
		{func(a *Asm) { a.RRA(R4) }, 0x1104},
		{func(a *Asm) { a.SXT(R4) }, 0x1184},
	}
	for i, c := range cases {
		if got := words(t, c.build); got[0] != c.want {
			t.Errorf("case %d: %#04x, want %#04x", i, got[0], c.want)
		}
	}
}

func TestJumpEncodings(t *testing.T) {
	// JMP $ (self) has offset -1: 0x3FFF.
	got := words(t, func(a *Asm) { a.Halt() })
	if got[0] != 0x3FFF {
		t.Errorf("halt = %#04x, want 0x3FFF", got[0])
	}
	// Backward JNE over one word: offset -2.
	got = words(t, func(a *Asm) {
		a.Label("top")
		a.MOV(R4, R5)
		a.JNE("top")
	})
	if got[1] != 0x23FE {
		t.Errorf("jne top = %#04x, want 0x23FE", got[1])
	}
	// Forward JMP over one word: offset +1.
	got = words(t, func(a *Asm) {
		a.JMP("end")
		a.MOV(R4, R5)
		a.Label("end")
	})
	if got[0] != 0x3C01 {
		t.Errorf("jmp end = %#04x, want 0x3C01", got[0])
	}
}

func TestJumpOutOfRange(t *testing.T) {
	a := NewAsm()
	a.JMP("far")
	for i := 0; i < 600; i++ {
		a.MOV(R4, R4)
	}
	a.Label("far")
	if _, err := a.Assemble(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected range error, got %v", err)
	}
}

func TestDataAddrHelper(t *testing.T) {
	if DataAddr(0) != 0x0200 || DataAddr(3) != 0x0206 {
		t.Errorf("DataAddr: %#x %#x", DataAddr(0), DataAddr(3))
	}
}

func TestDisableWatchdogSequence(t *testing.T) {
	got := words(t, func(a *Asm) { a.DisableWatchdog() })
	// MOVI #0x80, R15 then MOV R15, WDTCTL(R3).
	if len(got) != 4 {
		t.Fatalf("prologue is %d words", len(got))
	}
	if got[1] != WDTHold {
		t.Errorf("hold immediate = %#04x", got[1])
	}
	if got[3] != AddrWDTCTL {
		t.Errorf("store offset = %#04x", got[3])
	}
}

func TestRegisterRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("r16 accepted")
		}
	}()
	a := NewAsm()
	a.MOV(16, 0)
}
