package msp430

import "fmt"

// Disasm renders one instruction for debugging. Instructions with an
// extension word take it as ext; the returned width reports how many words
// the instruction consumed (1 or 2). Unknown encodings render as ".word".
func Disasm(w, ext uint16) (text string, width int) {
	// Jumps.
	if w&0xE000 == 0x2000 {
		cond := int(w >> 10 & 7)
		off := int16(w<<6) >> 6
		names := [...]string{"jne", "jeq", "jnc", "jc", "jn", "jge", "jl", "jmp"}
		return fmt.Sprintf("%s %+d", names[cond], off), 1
	}
	// Format II.
	if w&0xFC00 == 0x1000 {
		op2 := int(w >> 7 & 7)
		as := int(w >> 4 & 3)
		dst := int(w & 0xF)
		names := map[int]string{Op2RRC: "rrc", Op2SWPB: "swpb", Op2RRA: "rra", Op2SXT: "sxt"}
		name, ok := names[op2]
		if !ok {
			return fmt.Sprintf(".word 0x%04x", w), 1
		}
		switch as {
		case 0:
			return fmt.Sprintf("%s r%d", name, dst), 1
		case 1:
			return fmt.Sprintf("%s %d(r%d)", name, int16(ext), dst), 2
		}
		return fmt.Sprintf(".word 0x%04x", w), 1
	}
	// Format I.
	op := int(w >> 12)
	if op < 4 {
		return fmt.Sprintf(".word 0x%04x", w), 1
	}
	names := [...]string{4: "mov", 5: "add", 6: "addc", 7: "subc", 8: "sub",
		9: "cmp", 10: "dadd", 11: "bit", 12: "bic", 13: "bis", 14: "xor", 15: "and"}
	src := int(w >> 8 & 0xF)
	ad := int(w >> 7 & 1)
	as := int(w >> 4 & 3)
	dst := int(w & 0xF)

	width = 1
	var srcStr string
	switch as {
	case 0:
		srcStr = fmt.Sprintf("r%d", src)
	case 1:
		srcStr = fmt.Sprintf("%d(r%d)", int16(ext), src)
		width = 2
	case 3:
		srcStr = fmt.Sprintf("#%d", int16(ext))
		width = 2
	default:
		srcStr = fmt.Sprintf("@r%d", src)
	}
	var dstStr string
	if ad == 1 {
		dstStr = fmt.Sprintf("%d(r%d)", int16(ext), dst)
		width = 2
	} else {
		dstStr = fmt.Sprintf("r%d", dst)
	}
	return fmt.Sprintf("%s %s, %s", names[op], srcStr, dstStr), width
}
