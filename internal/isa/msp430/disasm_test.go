package msp430

import (
	"strings"
	"testing"
)

// disasmAll walks an image and returns the disassembly lines.
func disasmAll(t *testing.T, a *Asm) []string {
	t.Helper()
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for i := 0; i < len(img.ROM); {
		w, _ := img.ROM[i].Uint64()
		var ext uint64
		if i+1 < len(img.ROM) {
			ext, _ = img.ROM[i+1].Uint64()
		}
		text, width := Disasm(uint16(w), uint16(ext))
		out = append(out, text)
		i += width
	}
	return out
}

func TestDisasmGolden(t *testing.T) {
	a := NewAsm()
	a.MOV(R4, R5)
	a.ADDI(-3, R6)
	a.MOVM(8, R4, R7)
	a.MOVRM(R7, 10, R4)
	a.RRA(R8)
	a.SWPB(R9)
	a.CMP(R4, R5)
	a.JEQ("end")
	a.Label("end")
	a.Halt()
	got := disasmAll(t, a)
	want := []string{
		"mov r4, r5",
		"add #-3, r6",
		"mov 8(r4), r7",
		"mov r7, 10(r4)",
		"rra r8",
		"swpb r9",
		"cmp r4, r5",
		"jeq +0",
		"jmp -1",
	}
	if len(got) != len(want) {
		t.Fatalf("lines = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d: %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDisasmRejectsGarbage(t *testing.T) {
	if s, w := Disasm(0x0123, 0); !strings.HasPrefix(s, ".word") || w != 1 {
		t.Errorf("garbage: %q width %d", s, w)
	}
}
