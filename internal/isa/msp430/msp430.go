// Package msp430 implements an MSP430-subset encoder, assembler and
// disassembler for the openMSP430 processor of the paper's evaluation.
// The MSP430 resolves conditional jumps from the 1-bit N, Z, C and V flags
// of the status register — the architectural property behind openMSP430's
// small simulation path counts in paper §5.0.3 — and its benchmarks use
// the hardware multiplier peripheral instead of a multiply instruction.
//
// Supported encodings (word operations only, B/W = 0):
//
//   - Format I  (two-operand): MOV ADD ADDC SUB SUBC CMP BIT BIC BIS XOR AND
//     with source modes register / indexed x(Rn) / immediate #n, and
//     destination modes register / indexed x(Rn). At most one extension
//     word per instruction (the assembler rejects #imm -> x(Rn) forms).
//   - Format II (one-operand):  RRA RRC SWPB SXT, register mode.
//   - Jumps: JNE JEQ JNC JC JN JGE JL JMP with 10-bit word offsets.
package msp430

import (
	"fmt"

	"symsim/internal/isa"
	"symsim/internal/logic"
)

// General-purpose registers. R0-R3 are special in real MSP430 (PC, SP, SR,
// CG); this implementation keeps them out of program use except that R0 as
// a Format I source with As=11 encodes immediate mode, as on real silicon.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// Format I opcodes.
const (
	OpMOV  = 0x4
	OpADD  = 0x5
	OpADDC = 0x6
	OpSUBC = 0x7
	OpSUB  = 0x8
	OpCMP  = 0x9
	OpDADD = 0xA
	OpBIT  = 0xB
	OpBIC  = 0xC
	OpBIS  = 0xD
	OpXOR  = 0xE
	OpAND  = 0xF
)

// Format II opcodes (bits 9:7).
const (
	Op2RRC  = 0
	Op2SWPB = 1
	Op2RRA  = 2
	Op2SXT  = 3
)

// Jump condition codes (bits 12:10).
const (
	CondJNE = 0
	CondJEQ = 1
	CondJNC = 2
	CondJC  = 3
	CondJN  = 4
	CondJGE = 5
	CondJL  = 6
	CondJMP = 7
)

// Memory map of the openMSP430 platform (byte addresses).
const (
	// AddrP1IN..AddrP1DIR are the GPIO port registers.
	AddrP1IN  = 0x0020
	AddrP1OUT = 0x0022
	AddrP1DIR = 0x0024
	// AddrWDTCTL is the watchdog control register (bit 7 = WDTHOLD).
	AddrWDTCTL = 0x0120
	// WDTHold is the watchdog hold bit within WDTCTL.
	WDTHold = 0x0080
	// AddrMPY..AddrRESHI are the 16x16 hardware multiplier registers.
	AddrMPY   = 0x0130
	AddrOP2   = 0x0132
	AddrRESLO = 0x0134
	AddrRESHI = 0x0136
	// AddrTACTL..AddrTACCR0 are the TimerA registers (TACTL bit 0 = run).
	AddrTACTL  = 0x0160
	AddrTAR    = 0x0170
	AddrTACCR0 = 0x0172
	// RAMBase is the first data RAM byte address.
	RAMBase = 0x0200
)

// DataAddr returns the byte address of data-memory word index.
func DataAddr(index int) int32 { return int32(RAMBase + 2*index) }

func checkReg(r int) {
	if r < 0 || r > 15 {
		panic(fmt.Sprintf("msp430: register r%d out of range", r))
	}
}

// EncodeFmt1 encodes a two-operand instruction word.
func EncodeFmt1(op, src int, ad, bw, as, dst int) uint16 {
	return uint16(op)<<12 | uint16(src)<<8 | uint16(ad)<<7 | uint16(bw)<<6 |
		uint16(as)<<4 | uint16(dst)
}

// EncodeFmt2 encodes a one-operand instruction word.
func EncodeFmt2(op2, bw, as, dst int) uint16 {
	return 0x1000 | uint16(op2)<<7 | uint16(bw)<<6 | uint16(as)<<4 | uint16(dst)
}

// EncodeJump encodes a jump with a signed 10-bit word offset.
func EncodeJump(cond int, off int32) uint16 {
	return 0x2000 | uint16(cond)<<10 | uint16(off)&0x3FF
}

// Asm is a two-pass MSP430 assembler.
type Asm struct {
	words  []uint16
	labels *isa.Labels
	data   map[int]logic.Vec
	xwords []int
	err    error
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: isa.NewLabels(), data: make(map[int]logic.Vec)}
}

// PC returns the byte address of the next emitted word.
func (a *Asm) PC() uint32 { return uint32(len(a.words)) * 2 }

// Label defines name at the current PC.
func (a *Asm) Label(name string) {
	if err := a.labels.Define(name, a.PC()); err != nil && a.err == nil {
		a.err = err
	}
}

func (a *Asm) emit(w uint16) { a.words = append(a.words, w) }

// Word initializes data-memory word index to a known 16-bit value.
func (a *Asm) Word(index int, v uint16) { a.data[index] = isa.VecOf(16, uint64(v)) }

// XWord marks data-memory word index as an application input (left X).
func (a *Asm) XWord(index int) { a.xwords = append(a.xwords, index) }

// --- Format I, register-register ---

func (a *Asm) rr(op, src, dst int) {
	checkReg(src)
	checkReg(dst)
	a.emit(EncodeFmt1(op, src, 0, 0, 0, dst))
}

// MOV: dst = src.
func (a *Asm) MOV(src, dst int) { a.rr(OpMOV, src, dst) }

// ADD: dst += src, sets NZCV.
func (a *Asm) ADD(src, dst int) { a.rr(OpADD, src, dst) }

// ADDC: dst += src + C.
func (a *Asm) ADDC(src, dst int) { a.rr(OpADDC, src, dst) }

// SUB: dst -= src, sets NZCV.
func (a *Asm) SUB(src, dst int) { a.rr(OpSUB, src, dst) }

// SUBC: dst = dst - src - 1 + C.
func (a *Asm) SUBC(src, dst int) { a.rr(OpSUBC, src, dst) }

// CMP: sets NZCV from dst - src without writing back.
func (a *Asm) CMP(src, dst int) { a.rr(OpCMP, src, dst) }

// BIT: sets NZ from dst & src without writing back.
func (a *Asm) BIT(src, dst int) { a.rr(OpBIT, src, dst) }

// BIC: dst &= ^src.
func (a *Asm) BIC(src, dst int) { a.rr(OpBIC, src, dst) }

// BIS: dst |= src.
func (a *Asm) BIS(src, dst int) { a.rr(OpBIS, src, dst) }

// XOR: dst ^= src, sets NZ.
func (a *Asm) XOR(src, dst int) { a.rr(OpXOR, src, dst) }

// AND: dst &= src, sets NZ.
func (a *Asm) AND(src, dst int) { a.rr(OpAND, src, dst) }

// --- Format I, immediate source (#imm, As=11, src=R0) ---

func (a *Asm) ri(op int, imm int32, dst int) {
	checkReg(dst)
	a.emit(EncodeFmt1(op, R0, 0, 0, 3, dst))
	a.emit(uint16(imm))
}

// MOVI: dst = #imm.
func (a *Asm) MOVI(imm int32, dst int) { a.ri(OpMOV, imm, dst) }

// ADDI: dst += #imm.
func (a *Asm) ADDI(imm int32, dst int) { a.ri(OpADD, imm, dst) }

// SUBI: dst -= #imm.
func (a *Asm) SUBI(imm int32, dst int) { a.ri(OpSUB, imm, dst) }

// CMPI: flags from dst - #imm.
func (a *Asm) CMPI(imm int32, dst int) { a.ri(OpCMP, imm, dst) }

// ANDI: dst &= #imm.
func (a *Asm) ANDI(imm int32, dst int) { a.ri(OpAND, imm, dst) }

// BISI: dst |= #imm.
func (a *Asm) BISI(imm int32, dst int) { a.ri(OpBIS, imm, dst) }

// BICI: dst &= ^#imm.
func (a *Asm) BICI(imm int32, dst int) { a.ri(OpBIC, imm, dst) }

// XORI: dst ^= #imm.
func (a *Asm) XORI(imm int32, dst int) { a.ri(OpXOR, imm, dst) }

// BITI: flags from dst & #imm.
func (a *Asm) BITI(imm int32, dst int) { a.ri(OpBIT, imm, dst) }

// --- Format I, indexed source x(Rn) ---

func (a *Asm) rm(op int, off int32, base, dst int) {
	checkReg(base)
	checkReg(dst)
	a.emit(EncodeFmt1(op, base, 0, 0, 1, dst))
	a.emit(uint16(off))
}

// MOVM: dst = mem[base + off] (MOV x(Rn), Rd).
func (a *Asm) MOVM(off int32, base, dst int) { a.rm(OpMOV, off, base, dst) }

// ADDM: dst += mem[base + off].
func (a *Asm) ADDM(off int32, base, dst int) { a.rm(OpADD, off, base, dst) }

// SUBM: dst -= mem[base + off].
func (a *Asm) SUBM(off int32, base, dst int) { a.rm(OpSUB, off, base, dst) }

// CMPM: flags from dst - mem[base + off].
func (a *Asm) CMPM(off int32, base, dst int) { a.rm(OpCMP, off, base, dst) }

// --- Format I, indexed destination (Rs -> x(Rn)) ---

func (a *Asm) mr(op, src int, off int32, base int) {
	checkReg(src)
	checkReg(base)
	a.emit(EncodeFmt1(op, src, 1, 0, 0, base))
	a.emit(uint16(off))
}

// MOVRM: mem[base + off] = src (MOV Rs, x(Rn)).
func (a *Asm) MOVRM(src int, off int32, base int) { a.mr(OpMOV, src, off, base) }

// ADDRM: mem[base + off] += src.
func (a *Asm) ADDRM(src int, off int32, base int) { a.mr(OpADD, src, off, base) }

// --- Format II ---

func (a *Asm) fmt2(op2, dst int) {
	checkReg(dst)
	a.emit(EncodeFmt2(op2, 0, 0, dst))
}

// RRA: arithmetic shift right by one, LSB to carry.
func (a *Asm) RRA(dst int) { a.fmt2(Op2RRA, dst) }

// RRC: rotate right through carry.
func (a *Asm) RRC(dst int) { a.fmt2(Op2RRC, dst) }

// SWPB: swap bytes.
func (a *Asm) SWPB(dst int) { a.fmt2(Op2SWPB, dst) }

// SXT: sign-extend the low byte.
func (a *Asm) SXT(dst int) { a.fmt2(Op2SXT, dst) }

// --- Jumps ---

func (a *Asm) jump(cond int, label string) {
	a.labels.Fixups = append(a.labels.Fixups, isa.Fixup{
		Word: len(a.words), Label: label,
		Apply: func(word uint64, target, instr uint32) (uint64, error) {
			off := (int64(target) - int64(instr) - 2) / 2
			if !isa.FitsSigned(off, 10) {
				return 0, fmt.Errorf("jump offset %d out of range", off)
			}
			return uint64(EncodeJump(cond, int32(off))), nil
		},
	})
	a.emit(EncodeJump(cond, 0))
}

// JNE branches when Z is clear (also known as JNZ).
func (a *Asm) JNE(label string) { a.jump(CondJNE, label) }

// JEQ branches when Z is set (also known as JZ).
func (a *Asm) JEQ(label string) { a.jump(CondJEQ, label) }

// JNC branches when C is clear.
func (a *Asm) JNC(label string) { a.jump(CondJNC, label) }

// JC branches when C is set.
func (a *Asm) JC(label string) { a.jump(CondJC, label) }

// JN branches when N is set.
func (a *Asm) JN(label string) { a.jump(CondJN, label) }

// JGE branches when N xor V is clear (signed >=).
func (a *Asm) JGE(label string) { a.jump(CondJGE, label) }

// JL branches when N xor V is set (signed <).
func (a *Asm) JL(label string) { a.jump(CondJL, label) }

// JMP branches unconditionally.
func (a *Asm) JMP(label string) { a.jump(CondJMP, label) }

// Halt emits the terminating jump-to-self (JMP with offset -1).
func (a *Asm) Halt() { a.emit(EncodeJump(CondJMP, -1)) }

// DisableWatchdog emits the canonical MSP430 crt0 prologue
// "MOV #WDTHOLD, &WDTCTL" that every compiled benchmark starts with.
func (a *Asm) DisableWatchdog() {
	// Immediate source with absolute-style indexed destination via R3=0:
	// the assembler keeps R3 zeroed, so x(R3) addresses absolute x. Real
	// MSP430 uses the &ABS mode (Ad=1, dst=SR); this implementation
	// reaches the same effect through a zeroed base register. One
	// extension word only: first load the immediate into R15.
	a.MOVI(WDTHold, R15)
	a.MOVRM(R15, AddrWDTCTL, R3)
}

// StoreAbs emits mem[addr] = src via the zeroed R3 base.
func (a *Asm) StoreAbs(src int, addr int32) { a.MOVRM(src, addr, R3) }

// LoadAbs emits dst = mem[addr] via the zeroed R3 base.
func (a *Asm) LoadAbs(addr int32, dst int) { a.MOVM(addr, R3, dst) }

// Assemble resolves labels and returns the image.
func (a *Asm) Assemble() (*isa.Image, error) {
	if a.err != nil {
		return nil, a.err
	}
	err := a.labels.Resolve(
		func(w int) uint32 { return uint32(w) * 2 },
		func(w int) uint64 { return uint64(a.words[w]) },
		func(w int, v uint64) { a.words[w] = uint16(v) },
	)
	if err != nil {
		return nil, err
	}
	img := &isa.Image{Data: a.data, XWords: a.xwords, Symbols: a.labels.Defs}
	for _, w := range a.words {
		img.ROM = append(img.ROM, isa.VecOf(16, uint64(w)))
	}
	return img, nil
}

// MustAssemble is Assemble that panics on error.
func (a *Asm) MustAssemble() *isa.Image {
	img, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return img
}
