module symsim

go 1.22
