package main

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"
)

// This file is the client's transport hardening: shared http.Clients with
// real timeouts (the zero-value default client never times out, so a dead
// server used to hang every subcommand forever), exponential backoff with
// jitter for requests the server handles idempotently, and the reconnect
// budget the SSE follower draws on.

// unaryClient serves request/response calls. The overall timeout bounds a
// wedged server: no single status/result/submit call may take longer.
var unaryClient = &http.Client{
	Timeout:   30 * time.Second,
	Transport: newTransport(),
}

// streamClient serves SSE streams, which are long-lived by design — an
// overall timeout would sever healthy streams, so only the dial and
// response-header phases are bounded. Liveness on an established stream
// comes from the server's ": ping" keep-alives severing dead TCP paths.
var streamClient = &http.Client{Transport: newTransport()}

func newTransport() *http.Transport {
	return &http.Transport{
		DialContext:           (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
		ResponseHeaderTimeout: 10 * time.Second,
		IdleConnTimeout:       90 * time.Second,
	}
}

const (
	retryAttempts = 4
	retryBase     = 200 * time.Millisecond
	retryMaxDelay = 3 * time.Second
)

// backoff returns the delay before retry n (0-based): exponential growth
// capped at retryMaxDelay, with ±50% jitter so a burst of clients bounced
// by the same outage doesn't reconverge in lockstep.
func backoff(n int) time.Duration {
	d := retryBase << uint(n)
	if d > retryMaxDelay {
		d = retryMaxDelay
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

// retryStatus reports whether an HTTP status signals a transient refusal
// worth retrying: backpressure (429) or an unavailable/intermediary-down
// server (502/503/504).
func retryStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// doIdempotent issues the request built by build, retrying on transport
// errors and retryable statuses with jittered backoff. Only requests that
// are safe to repeat belong here (GETs, and cancel — requesting a stop
// twice stops the job once).
func doIdempotent(build func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for n := 0; n < retryAttempts; n++ {
		if n > 0 {
			d := backoff(n - 1)
			fmt.Fprintf(os.Stderr, "symsim: %v, retrying in %v\n", lastErr, d.Round(time.Millisecond))
			time.Sleep(d)
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := unaryClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if retryStatus(resp.StatusCode) && n < retryAttempts-1 {
			_ = resp.Body.Close()
			lastErr = fmt.Errorf("server: %s", resp.Status)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// clientGet is doIdempotent over a plain GET.
func clientGet(url string) (*http.Response, error) {
	return doIdempotent(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
}

// postIdempotent is doIdempotent over a bodyless POST — used for cancel,
// which the server treats idempotently.
func postIdempotent(url string) (*http.Response, error) {
	return doIdempotent(func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, url, nil)
	})
}

// postOnce issues a non-idempotent POST (job submission). A transport
// error is never retried — the request may have been accepted and a retry
// would submit a duplicate job — but a received 429/503 means the server
// refused before accepting, which is safe to retry with backoff.
func postOnce(url, contentType string, body func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for n := 0; n < retryAttempts; n++ {
		if n > 0 {
			d := backoff(n - 1)
			fmt.Fprintf(os.Stderr, "symsim: %v, retrying in %v\n", lastErr, d.Round(time.Millisecond))
			time.Sleep(d)
		}
		req, err := body()
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := unaryClient.Do(req)
		if err != nil {
			return nil, err
		}
		if retryStatus(resp.StatusCode) && n < retryAttempts-1 {
			_ = resp.Body.Close()
			lastErr = fmt.Errorf("server: %s", resp.Status)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}
