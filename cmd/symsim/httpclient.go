package main

import (
	"fmt"
	"net/http"
	"os"
	"time"

	"symsim/internal/httpx"
)

// This file is the client's transport hardening. The clients themselves
// live in internal/httpx — one shared unary client with a real timeout
// (the zero-value default client never times out, so a dead server used
// to hang every subcommand forever) serves both `symsim submit` and the
// cluster worker's pull RPCs, and one stream client serves SSE. This
// file keeps the retry choreography: exponential backoff with jitter for
// requests the server handles idempotently, and the reconnect budget the
// SSE follower draws on.

// unaryClient and streamClient alias the shared hardened clients so every
// call site in this command goes through the same pool and timeouts as
// the cluster worker.
var (
	unaryClient  = httpx.Unary
	streamClient = httpx.Stream
)

const (
	retryAttempts = httpx.RetryAttempts
	retryBase     = httpx.RetryBase
	retryMaxDelay = httpx.RetryMaxDelay
)

// backoff returns the jittered exponential delay before retry n
// (0-based); see httpx.Backoff.
func backoff(n int) time.Duration { return httpx.Backoff(n) }

// retryStatus reports whether an HTTP status signals a transient refusal
// worth retrying; see httpx.RetryStatus.
func retryStatus(code int) bool { return httpx.RetryStatus(code) }

// doIdempotent issues the request built by build, retrying on transport
// errors and retryable statuses with jittered backoff. Only requests that
// are safe to repeat belong here (GETs, and cancel — requesting a stop
// twice stops the job once).
func doIdempotent(build func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for n := 0; n < retryAttempts; n++ {
		if n > 0 {
			d := backoff(n - 1)
			fmt.Fprintf(os.Stderr, "symsim: %v, retrying in %v\n", lastErr, d.Round(time.Millisecond))
			time.Sleep(d)
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := unaryClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if retryStatus(resp.StatusCode) && n < retryAttempts-1 {
			_ = resp.Body.Close()
			lastErr = fmt.Errorf("server: %s", resp.Status)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// clientGet is doIdempotent over a plain GET.
func clientGet(url string) (*http.Response, error) {
	return doIdempotent(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
}

// postIdempotent is doIdempotent over a bodyless POST — used for cancel,
// which the server treats idempotently.
func postIdempotent(url string) (*http.Response, error) {
	return doIdempotent(func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, url, nil)
	})
}

// postOnce issues a non-idempotent POST (job submission). A transport
// error is never retried — the request may have been accepted and a retry
// would submit a duplicate job — but a received 429/503 means the server
// refused before accepting, which is safe to retry with backoff.
func postOnce(url, contentType string, body func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for n := 0; n < retryAttempts; n++ {
		if n > 0 {
			d := backoff(n - 1)
			fmt.Fprintf(os.Stderr, "symsim: %v, retrying in %v\n", lastErr, d.Round(time.Millisecond))
			time.Sleep(d)
		}
		req, err := body()
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := unaryClient.Do(req)
		if err != nil {
			return nil, err
		}
		if retryStatus(resp.StatusCode) && n < retryAttempts-1 {
			_ = resp.Body.Close()
			lastErr = fmt.Errorf("server: %s", resp.Status)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}
