package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"symsim/internal/cliflags"
	"symsim/internal/service"
)

// clientMain implements the daemon-client subcommands (submit, status,
// result, cancel, jobs) against a running symsimd. Returns the process
// exit code.
func clientMain(cmd string, args []string) int {
	switch cmd {
	case "submit":
		return submitCmd(args)
	case "status":
		return jobGetCmd("status", args, func(server, id string) error {
			return getJSON(server+"/jobs/"+id, prettyPrint)
		})
	case "result":
		return jobGetCmd("result", args, func(server, id string) error {
			return getJSON(server+"/jobs/"+id+"/result", prettyPrint)
		})
	case "cancel":
		return jobGetCmd("cancel", args, func(server, id string) error {
			resp, err := postIdempotent(server + "/jobs/" + id + "/cancel")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			return checkStatus(resp)
		})
	case "jobs":
		fs := flag.NewFlagSet("symsim jobs", flag.ExitOnError)
		server := serverFlag(fs)
		fs.Parse(args)
		if err := getJSON(*server+"/jobs", printJobTable); err != nil {
			fmt.Fprintln(os.Stderr, "symsim:", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(os.Stderr, "symsim: unknown subcommand %q\n", cmd)
	return 2
}

func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://localhost:8466", "symsimd base URL")
}

// submitCmd posts a job built from -design/-bench plus the shared analysis
// tuning flags (cliflags — the same vocabulary the one-shot CLI and the
// daemon use). With -follow it stays attached to the job's SSE stream and
// prints the result when the job completes.
func submitCmd(args []string) int {
	fs := flag.NewFlagSet("symsim submit", flag.ExitOnError)
	server := serverFlag(fs)
	design := fs.String("design", "", "processor: bm32 | omsp430 | dr5 (required)")
	bench := fs.String("bench", "", "benchmark to analyze (required)")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	follow := fs.Bool("follow", false, "stream progress until the job finishes, then print the result")
	tuning := cliflags.Register(fs)
	fs.Parse(args)
	if *design == "" || *bench == "" {
		fmt.Fprintln(os.Stderr, "symsim submit: -design and -bench are required")
		return 2
	}

	spec := service.JobSpec{
		Design:       *design,
		Bench:        *bench,
		Policy:       tuning.Policy,
		K:            tuning.K,
		MaxStates:    tuning.MaxStates,
		Engine:       tuning.Engine,
		MemX:         tuning.MemX,
		Workers:      tuning.Workers,
		Priority:     *priority,
		DeadlineMS:   tuning.Deadline.Milliseconds(),
		MaxCycles:    tuning.MaxCycles,
		MaxForks:     tuning.MaxForks,
		MaxCSMStates: tuning.MaxCSMStates,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symsim:", err)
		return 1
	}
	resp, err := postOnce(*server+"/jobs", "application/json", func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, *server+"/jobs", bytes.NewReader(body))
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "symsim:", err)
		return 1
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		fmt.Fprintln(os.Stderr, "symsim:", err)
		return 1
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		fmt.Fprintln(os.Stderr, "symsim:", err)
		return 1
	}
	fmt.Printf("job %s  %s", view.ID, view.State)
	if view.Cached {
		fmt.Print("  (cache hit)")
	}
	fmt.Println()

	if !*follow {
		return 0
	}
	final, err := followJob(*server, view.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symsim:", err)
		return 1
	}
	if final == service.StateDone {
		if err := getJSON(*server+"/jobs/"+view.ID+"/result", prettyPrint); err != nil {
			fmt.Fprintln(os.Stderr, "symsim:", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(os.Stderr, "symsim: job ended %s\n", final)
	return 1
}

// maxStreamRetries bounds consecutive failed SSE reconnect attempts; any
// successfully received event resets the budget.
const maxStreamRetries = 6

// followJob follows the job's SSE stream to its terminal state, echoing
// progress heartbeats to stderr. A killed connection reconnects with
// jittered backoff, resuming from the last received `id:` via the
// Last-Event-ID header — the server replays the missed window from its
// ring buffer, so no lifecycle event is duplicated or lost across the
// reconnect.
func followJob(server, id string) (service.State, error) {
	var lastEventID string
	failures := 0
	for {
		gotAny, st, err := streamEventsOnce(server, id, &lastEventID)
		if st != "" {
			return st, nil
		}
		if gotAny {
			failures = 0
		}
		// The stream ended without delivering a terminal event. Ask the
		// job API directly before reconnecting: a resumed stream ends
		// silently when this client already saw the terminal event, and a
		// job may finish while the stream is down.
		if view, verr := fetchJob(server, id); verr == nil && terminalState(view.State) {
			if lastEventID == "" {
				// No event ever printed the state; say it once here.
				fmt.Fprintf(os.Stderr, "symsim: job %s %s\n", id, view.State)
			}
			return view.State, nil
		}
		failures++
		if failures > maxStreamRetries {
			if err == nil {
				err = fmt.Errorf("event stream for job %s ended without a terminal state", id)
			}
			return "", err
		}
		d := backoff(failures - 1)
		fmt.Fprintf(os.Stderr, "symsim: event stream interrupted, reconnecting in %v\n", d.Round(time.Millisecond))
		time.Sleep(d)
	}
}

// streamEventsOnce runs one SSE connection. It updates *lastEventID from
// `id:` lines as events arrive, returns the terminal state if one was
// observed, and reports whether any event landed (to reset the caller's
// retry budget).
func streamEventsOnce(server, id string, lastEventID *string) (gotAny bool, st service.State, err error) {
	req, err := http.NewRequest(http.MethodGet, server+"/jobs/"+id+"/events", nil)
	if err != nil {
		return false, "", err
	}
	if *lastEventID != "" {
		req.Header.Set("Last-Event-ID", *lastEventID)
	}
	resp, err := streamClient.Do(req)
	if err != nil {
		return false, "", err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return false, "", err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			*lastEventID = strings.TrimPrefix(line, "id: ")
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		gotAny = true
		switch ev.Type {
		case "progress":
			if pr := ev.Progress; pr != nil {
				fmt.Fprintf(os.Stderr, "symsim: %8.1fs  %d done / %d pending / %d in flight  %d cycles  %d csm states\n",
					pr.Elapsed.Seconds(), pr.PathsDone, pr.PathsPending, pr.PathsInFlight, pr.SimulatedCycles, pr.CSMStates)
			}
		case "state":
			fmt.Fprintf(os.Stderr, "symsim: job %s %s\n", id, ev.State)
			if terminalState(ev.State) {
				return gotAny, ev.State, nil
			}
		}
	}
	return gotAny, "", sc.Err()
}

func terminalState(st service.State) bool {
	return st == service.StateDone || st == service.StateFailed || st == service.StateCanceled
}

// fetchJob reads one job's view (with idempotent-GET retry).
func fetchJob(server, id string) (service.JobView, error) {
	var view service.JobView
	resp, err := clientGet(server + "/jobs/" + id)
	if err != nil {
		return view, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return view, err
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	return view, err
}

// jobGetCmd factors the subcommands of shape `symsim <cmd> [-server ...] <job-id>`.
func jobGetCmd(name string, args []string, run func(server, id string) error) int {
	fs := flag.NewFlagSet("symsim "+name, flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: symsim %s [-server URL] <job-id>\n", name)
		return 2
	}
	if err := run(*server, fs.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "symsim:", err)
		return 1
	}
	return 0
}

func getJSON(url string, sink func([]byte) error) error {
	resp, err := clientGet(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return sink(data)
}

func prettyPrint(data []byte) error {
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		// Not JSON (or malformed): pass the payload through untouched.
		_, werr := os.Stdout.Write(data)
		return werr
	}
	buf.WriteByte('\n')
	_, err := buf.WriteTo(os.Stdout)
	return err
}

func printJobTable(data []byte) error {
	var views []service.JobView
	if err := json.Unmarshal(data, &views); err != nil {
		return err
	}
	if len(views) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-26s %-9s %-10s %-12s %s\n", "ID", "STATE", "DESIGN", "BENCH", "FLAGS")
	for _, v := range views {
		var notes []string
		if v.Cached {
			notes = append(notes, "cached")
		}
		if v.Resumable {
			notes = append(notes, "resumable")
		}
		fmt.Printf("%-26s %-9s %-10s %-12s %s\n",
			v.ID, v.State, v.Spec.Design, v.Spec.Bench, strings.Join(notes, ","))
	}
	return nil
}

// checkStatus turns a non-2xx response into an error carrying the server's
// JSON error message when present.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
}
