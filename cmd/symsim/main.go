// Command symsim runs one symbolic hardware/software co-analysis: a
// benchmark application on one of the three evaluation processors, under a
// selectable conservative-state policy. It prints the exercisable-gate
// dichotomy and the path/cycle statistics of the run.
//
// Usage:
//
//	symsim -design omsp430 -bench tHold
//	symsim -design dr5 -bench mult -policy clustered -k 4
//	symsim -design bm32 -bench Div -workers 8 -v
//
// Long co-analyses are governed: -deadline bounds wall-clock time (the
// run degrades soundly instead of erroring), -checkpoint periodically
// saves the exploration state to a file, and -resume continues from it
// after a kill or crash. SIGINT/SIGTERM trigger the same clean shutdown
// as an expired deadline:
//
//	symsim -design omsp430 -bench tHold -deadline 2m -checkpoint run.ckpt
//	symsim -design omsp430 -bench tHold -checkpoint run.ckpt -resume
//
// The constrained policy refines merged states with application facts
// from a -constraints file: one fact per line, each a pinned state bit
// (pc=0x14 bit=dff:pc[0] val=0), a register value range (pc=* reg=r6
// min=0x0 max=0x3f) or a bit relation (pc=0x1e rel=dff:a[0]!=dff:b[0]);
// pc=* applies the fact at every PC. Facts also prove forked children
// infeasible before they are scheduled, pruning the path explosion at
// its source; -no-prune disables only that pruning for A/B comparison:
//
//	symsim -design omsp430 -bench tHold -policy constrained -constraints facts.txt
//
// Every run publishes exploration metrics; -trace additionally records a
// JSONL trace of the exploration (per-path spans plus the CSM decision
// log) that the explain subcommand renders as a fork tree with per-PC
// merge hot spots. The stats subcommand is a normal run that ends with
// the full metrics registry in Prometheus text form:
//
//	symsim -design dr5 -bench mult -trace run.trace
//	symsim explain run.trace
//	symsim stats -design dr5 -bench mult
//
// The lint subcommand runs the structural static-analysis pass alone,
// over the shipped processors and/or serialized netlist files:
//
//	symsim lint -design all
//	symsim lint -json design.json
//	symsim lint -fail-on warn -design omsp430
//
// The submit/status/result/cancel/jobs subcommands are the client of the
// symsimd analysis daemon (see cmd/symsimd): analyses become queued jobs
// with streamed progress and content-addressed result caching:
//
//	symsim submit -server http://localhost:8466 -design dr5 -bench tea8 -follow
//	symsim jobs -server http://localhost:8466
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"symsim/internal/cliflags"
	"symsim/internal/core"
	"symsim/internal/lint"
	"symsim/internal/netlist"
	"symsim/internal/obs"
	"symsim/internal/report"
	"symsim/internal/vvp"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "lint":
			os.Exit(lintMain(os.Args[2:]))
		case "explain":
			os.Exit(explainMain(os.Args[2:]))
		case "stats":
			analyzeMain(os.Args[2:], true)
			return
		case "submit", "status", "result", "cancel", "jobs":
			os.Exit(clientMain(os.Args[1], os.Args[2:]))
		}
	}
	analyzeMain(os.Args[1:], false)
}

// analyzeMain is both the default command and the stats subcommand;
// printStats appends the run's metrics registry in Prometheus text form.
func analyzeMain(args []string, printStats bool) {
	fs := flag.NewFlagSet("symsim", flag.ExitOnError)
	var (
		design  = fs.String("design", "omsp430", "processor: bm32 | omsp430 | dr5")
		bench   = fs.String("bench", "tHold", "benchmark: Div | inSort | binSearch | tHold | mult | tea8")
		verbose = fs.Bool("v", false, "print per-path details")
		dumpDir = fs.String("dump-states", "", "write every saved halt state to this directory (sim_state.log files)")
		vcdOut  = fs.String("vcd", "", "dump the initial symbolic path's waveform (X values visible) to this file")

		// The analysis-tuning flags (policy, engine, memx, workers and the
		// budget family) are shared with cmd/symsimd via cliflags, so the
		// one-shot CLI and the daemon cannot drift.
		tuning = cliflags.Register(fs)

		noPrune = fs.Bool("no-prune", false, "disable constraint-aware pre-fork pruning (A/B comparison; pruning is sound and on by default)")

		ckptPath  = fs.String("checkpoint", "", "periodically checkpoint the exploration state to this file (atomic writes)")
		ckptEvery = fs.Duration("checkpoint-every", 30*time.Second, "minimum interval between periodic checkpoints")
		resume    = fs.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
		progress  = fs.Duration("progress", 0, "print a progress heartbeat at this interval (0 = off)")
		traceOut  = fs.String("trace", "", "write a JSONL exploration trace (spans + CSM decision log) to this file; render with `symsim explain`")

		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the analysis to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	p, err := report.BuildPlatform(report.Design(*design), *bench)
	if err != nil {
		fatal(err)
	}

	cfg, err := tuning.Config(p.Spec)
	if err != nil {
		fatal(err)
	}
	cfg.DisablePrune = *noPrune
	if *verbose {
		// The structural pre-check always runs (errors abort the
		// analysis); -v additionally surfaces its warnings.
		cfg.LintWarn = func(d lint.Diag) { fmt.Fprintln(os.Stderr, "symsim: lint:", d) }
	}

	if *dumpDir != "" {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			fatal(err)
		}
		var mu sync.Mutex
		cfg.OnHalt = func(pathID int, st vvp.State) {
			data, err := st.MarshalBinary()
			if err != nil {
				fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			name := filepath.Join(*dumpDir, fmt.Sprintf("sim_state_%04d_pc%04x.log", pathID, st.PC))
			if err := os.WriteFile(name, data, 0o644); err != nil {
				fatal(err)
			}
		}
	}

	var tr *vvp.Trace
	if *vcdOut != "" {
		tr = &vvp.Trace{}
		cfg.Trace = tr
	}

	if *ckptPath != "" {
		cfg.Checkpoint = &core.CheckpointConfig{Path: *ckptPath, Interval: *ckptEvery}
	}
	if *resume {
		if *ckptPath == "" {
			fatal(fmt.Errorf("-resume needs -checkpoint <file>"))
		}
		ckpt, err := core.LoadCheckpoint(*ckptPath)
		if err != nil {
			fatal(err)
		}
		cfg.Resume = ckpt
		fmt.Fprintf(os.Stderr, "symsim: resuming from %s (%d pending paths, %d conservative states)\n",
			*ckptPath, len(ckpt.Pending), len(ckpt.CSM))
	}
	if *progress > 0 {
		cfg.ProgressEvery = *progress
		cfg.Progress = func(pr core.Progress) {
			fmt.Fprintf(os.Stderr, "symsim: %8.1fs  %d done / %d pending / %d in flight  %d cycles  %d csm states\n",
				pr.Elapsed.Seconds(), pr.PathsDone, pr.PathsPending, pr.PathsInFlight, pr.SimulatedCycles, pr.CSMStates)
		}
	}

	// stats gets its own registry so the exposition below holds exactly
	// this run, not whatever else the process may have counted.
	var reg *obs.Registry
	if printStats {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		cfg.Tracer = obs.NewTracer(f)
	}

	// SIGINT/SIGTERM drain the run cleanly: workers stop, the pending
	// frontier is checkpointed (when -checkpoint is set) and force-merged,
	// and the partial — still sound — dichotomy is printed.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	res, err := core.AnalyzeContext(ctx, p, cfg)
	if err != nil {
		fatal(err)
	}
	if traceFile != nil {
		// The analysis flushed the tracer; surface any retained write
		// error before declaring the trace usable.
		if err := cfg.Tracer.Err(); err != nil {
			fatal(fmt.Errorf("writing trace %s: %w", *traceOut, err))
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace       %s (render with: symsim explain %s)\n", *traceOut, *traceOut)
	}
	if tr != nil {
		f, err := os.Create(*vcdOut)
		if err != nil {
			fatal(err)
		}
		if err := vvp.WriteVCD(f, p.Design, tr, "1ns"); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("waveform    %s (initial symbolic path)\n", *vcdOut)
	}
	if *dumpDir != "" {
		fmt.Printf("states      dumped to %s\n", *dumpDir)
	}

	fmt.Printf("design      %s (%d gates, %d state bits)\n", p.Name, res.TotalGates, p.Spec.Bits())
	fmt.Printf("benchmark   %s\n", *bench)
	fmt.Printf("policy      %s (%d conservative states)\n", res.Policy, res.CSMStates)
	fmt.Printf("exercisable %d / %d gates  (%.2f%% reduction)\n",
		res.ExercisableCount, res.TotalGates, res.ReductionPct())
	if res.PathsPruned > 0 {
		fmt.Printf("paths       %d created, %d skipped, %d pruned pre-fork\n",
			res.PathsCreated, res.PathsSkipped, res.PathsPruned)
	} else {
		fmt.Printf("paths       %d created, %d skipped\n", res.PathsCreated, res.PathsSkipped)
	}
	fmt.Printf("cycles      %d simulated\n", res.SimulatedCycles)

	if deg := res.Degradation; deg != nil {
		fmt.Printf("INCOMPLETE  stopped by %s; result is sound but over-approximate\n", deg.Trip)
		fmt.Printf("            %d pending paths (%d force-merged), %d nets conservatively marked (%d gates)\n",
			deg.PendingPaths, deg.ForcedMerges, deg.ConeNets, deg.ConeGates)
		for _, q := range deg.Quarantined {
			fmt.Printf("            quarantined path %d (pc=%#x): %s\n", q.PathID, q.PC, q.Panic)
		}
		if *ckptPath != "" {
			fmt.Printf("            resume with: -checkpoint %s -resume\n", *ckptPath)
		}
	}

	if *verbose {
		fmt.Println("\npath segments:")
		for _, ps := range res.Paths {
			fmt.Printf("  #%-4d %8d cycles  %-9s", ps.ID, ps.Cycles, ps.End)
			if ps.End != core.EndFinished {
				fmt.Printf("  pc=%#06x", ps.HaltPC)
			}
			fmt.Println()
		}
		fmt.Println("\nuntoggled constant sample (first 20):")
		n := 0
		for gi, ex := range res.ExercisableGates {
			if ex || n >= 20 {
				continue
			}
			out := res.Design.Gates[gi].Out
			fmt.Printf("  %-28s = %v\n", res.Design.NetName(out), res.ConstNets[out])
			n++
		}
	}
	if printStats {
		fmt.Println()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
	}
	_ = netlist.NoNet
}

// explainMain renders a -trace JSONL file as a fork tree with per-PC
// merge hot spots.
func explainMain(args []string) int {
	fs := flag.NewFlagSet("symsim explain", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: symsim explain <trace-file>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "symsim:", err)
		return 1
	}
	defer f.Close()
	log, err := obs.ReadTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symsim: reading trace %s: %v\n", fs.Arg(0), err)
		return 1
	}
	if err := obs.Explain(os.Stdout, log); err != nil {
		fmt.Fprintln(os.Stderr, "symsim:", err)
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symsim:", err)
	os.Exit(1)
}
