// Command symsim runs one symbolic hardware/software co-analysis: a
// benchmark application on one of the three evaluation processors, under a
// selectable conservative-state policy. It prints the exercisable-gate
// dichotomy and the path/cycle statistics of the run.
//
// Usage:
//
//	symsim -design omsp430 -bench tHold
//	symsim -design dr5 -bench mult -policy clustered -k 4
//	symsim -design bm32 -bench Div -workers 8 -v
//
// Long co-analyses are governed: -deadline bounds wall-clock time (the
// run degrades soundly instead of erroring), -checkpoint periodically
// saves the exploration state to a file, and -resume continues from it
// after a kill or crash. SIGINT/SIGTERM trigger the same clean shutdown
// as an expired deadline:
//
//	symsim -design omsp430 -bench tHold -deadline 2m -checkpoint run.ckpt
//	symsim -design omsp430 -bench tHold -checkpoint run.ckpt -resume
//
// The lint subcommand runs the structural static-analysis pass alone,
// over the shipped processors and/or serialized netlist files:
//
//	symsim lint -design all
//	symsim lint -json design.json
//	symsim lint -fail-on warn -design omsp430
//
// The submit/status/result/cancel/jobs subcommands are the client of the
// symsimd analysis daemon (see cmd/symsimd): analyses become queued jobs
// with streamed progress and content-addressed result caching:
//
//	symsim submit -server http://localhost:8466 -design dr5 -bench tea8 -follow
//	symsim jobs -server http://localhost:8466
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"symsim/internal/cliflags"
	"symsim/internal/core"
	"symsim/internal/lint"
	"symsim/internal/netlist"
	"symsim/internal/report"
	"symsim/internal/vvp"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "lint":
			os.Exit(lintMain(os.Args[2:]))
		case "submit", "status", "result", "cancel", "jobs":
			os.Exit(clientMain(os.Args[1], os.Args[2:]))
		}
	}
	analyzeMain()
}

func analyzeMain() {
	var (
		design  = flag.String("design", "omsp430", "processor: bm32 | omsp430 | dr5")
		bench   = flag.String("bench", "tHold", "benchmark: Div | inSort | binSearch | tHold | mult | tea8")
		verbose = flag.Bool("v", false, "print per-path details")
		dumpDir = flag.String("dump-states", "", "write every saved halt state to this directory (sim_state.log files)")
		vcdOut  = flag.String("vcd", "", "dump the initial symbolic path's waveform (X values visible) to this file")

		// The analysis-tuning flags (policy, engine, memx, workers and the
		// budget family) are shared with cmd/symsimd via cliflags, so the
		// one-shot CLI and the daemon cannot drift.
		tuning = cliflags.Register(flag.CommandLine)

		ckptPath  = flag.String("checkpoint", "", "periodically checkpoint the exploration state to this file (atomic writes)")
		ckptEvery = flag.Duration("checkpoint-every", 30*time.Second, "minimum interval between periodic checkpoints")
		resume    = flag.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
		progress  = flag.Duration("progress", 0, "print a progress heartbeat at this interval (0 = off)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the analysis to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	p, err := report.BuildPlatform(report.Design(*design), *bench)
	if err != nil {
		fatal(err)
	}

	cfg, err := tuning.Config(p.Spec)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		// The structural pre-check always runs (errors abort the
		// analysis); -v additionally surfaces its warnings.
		cfg.LintWarn = func(d lint.Diag) { fmt.Fprintln(os.Stderr, "symsim: lint:", d) }
	}

	if *dumpDir != "" {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			fatal(err)
		}
		var mu sync.Mutex
		cfg.OnHalt = func(pathID int, st vvp.State) {
			data, err := st.MarshalBinary()
			if err != nil {
				fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			name := filepath.Join(*dumpDir, fmt.Sprintf("sim_state_%04d_pc%04x.log", pathID, st.PC))
			if err := os.WriteFile(name, data, 0o644); err != nil {
				fatal(err)
			}
		}
	}

	var tr *vvp.Trace
	if *vcdOut != "" {
		tr = &vvp.Trace{}
		cfg.Trace = tr
	}

	if *ckptPath != "" {
		cfg.Checkpoint = &core.CheckpointConfig{Path: *ckptPath, Interval: *ckptEvery}
	}
	if *resume {
		if *ckptPath == "" {
			fatal(fmt.Errorf("-resume needs -checkpoint <file>"))
		}
		ckpt, err := core.LoadCheckpoint(*ckptPath)
		if err != nil {
			fatal(err)
		}
		cfg.Resume = ckpt
		fmt.Fprintf(os.Stderr, "symsim: resuming from %s (%d pending paths, %d conservative states)\n",
			*ckptPath, len(ckpt.Pending), len(ckpt.CSM))
	}
	if *progress > 0 {
		cfg.ProgressEvery = *progress
		cfg.Progress = func(pr core.Progress) {
			fmt.Fprintf(os.Stderr, "symsim: %8.1fs  %d done / %d pending / %d in flight  %d cycles  %d csm states\n",
				pr.Elapsed.Seconds(), pr.PathsDone, pr.PathsPending, pr.PathsInFlight, pr.SimulatedCycles, pr.CSMStates)
		}
	}

	// SIGINT/SIGTERM drain the run cleanly: workers stop, the pending
	// frontier is checkpointed (when -checkpoint is set) and force-merged,
	// and the partial — still sound — dichotomy is printed.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	res, err := core.AnalyzeContext(ctx, p, cfg)
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		f, err := os.Create(*vcdOut)
		if err != nil {
			fatal(err)
		}
		if err := vvp.WriteVCD(f, p.Design, tr, "1ns"); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("waveform    %s (initial symbolic path)\n", *vcdOut)
	}
	if *dumpDir != "" {
		fmt.Printf("states      dumped to %s\n", *dumpDir)
	}

	fmt.Printf("design      %s (%d gates, %d state bits)\n", p.Name, res.TotalGates, p.Spec.Bits())
	fmt.Printf("benchmark   %s\n", *bench)
	fmt.Printf("policy      %s (%d conservative states)\n", res.Policy, res.CSMStates)
	fmt.Printf("exercisable %d / %d gates  (%.2f%% reduction)\n",
		res.ExercisableCount, res.TotalGates, res.ReductionPct())
	fmt.Printf("paths       %d created, %d skipped\n", res.PathsCreated, res.PathsSkipped)
	fmt.Printf("cycles      %d simulated\n", res.SimulatedCycles)

	if deg := res.Degradation; deg != nil {
		fmt.Printf("INCOMPLETE  stopped by %s; result is sound but over-approximate\n", deg.Trip)
		fmt.Printf("            %d pending paths (%d force-merged), %d nets conservatively marked (%d gates)\n",
			deg.PendingPaths, deg.ForcedMerges, deg.ConeNets, deg.ConeGates)
		for _, q := range deg.Quarantined {
			fmt.Printf("            quarantined path %d (pc=%#x): %s\n", q.PathID, q.PC, q.Panic)
		}
		if *ckptPath != "" {
			fmt.Printf("            resume with: -checkpoint %s -resume\n", *ckptPath)
		}
	}

	if *verbose {
		fmt.Println("\npath segments:")
		for _, ps := range res.Paths {
			fmt.Printf("  #%-4d %8d cycles  %-9s", ps.ID, ps.Cycles, ps.End)
			if ps.End != core.EndFinished {
				fmt.Printf("  pc=%#06x", ps.HaltPC)
			}
			fmt.Println()
		}
		fmt.Println("\nuntoggled constant sample (first 20):")
		n := 0
		for gi, ex := range res.ExercisableGates {
			if ex || n >= 20 {
				continue
			}
			out := res.Design.Gates[gi].Out
			fmt.Printf("  %-28s = %v\n", res.Design.NetName(out), res.ConstNets[out])
			n++
		}
	}
	_ = netlist.NoNet
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symsim:", err)
	os.Exit(1)
}
