package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"symsim/internal/diag"
	"symsim/internal/lint"
	"symsim/internal/netlist"
	"symsim/internal/report"
)

// lintMain implements the "symsim lint" subcommand: the structural
// static-analysis pass over shipped processor netlists (-design) and/or
// serialized netlist JSON files given as positional arguments. It returns
// the process exit code: 0 when every target stays below the -fail-on
// severity threshold, 1 otherwise, 2 on usage or I/O errors.
func lintMain(args []string) int {
	fs := flag.NewFlagSet("symsim lint", flag.ExitOnError)
	var (
		design   = fs.String("design", "", "shipped processor to lint: bm32 | omsp430 | dr5 | all")
		jsonOut  = fs.Bool("json", false, "emit machine-readable JSON instead of text")
		failOn   = fs.String("fail-on", "error", "lowest severity that fails the run: error | warn | info")
		maxDiags = fs.Int("max-per-code", lint.DefaultMaxPerCode, "diagnostics reported per code (-1 = unlimited)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: symsim lint [-design bm32|omsp430|dr5|all] [-json] [-fail-on error|warn|info] [netlist.json ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *design == "" && fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	// The threshold semantics are shared with symsimvet via internal/diag
	// so the two gates cannot drift.
	minSev, err := diag.ParseFailOn(*failOn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symsim lint: %v\n", err)
		return 2
	}

	// Assemble the targets: shipped designs first, then files.
	type target struct {
		n    *netlist.Netlist
		opts lint.Options
	}
	var targets []target
	if *design != "" {
		designs := report.Designs
		if *design != "all" {
			designs = []report.Design{report.Design(*design)}
		}
		for _, d := range designs {
			// Program choice does not affect structure; use the
			// smallest benchmark.
			p, err := report.BuildPlatform(d, "tea8")
			if err != nil {
				fmt.Fprintln(os.Stderr, "symsim lint:", err)
				return 2
			}
			targets = append(targets, target{n: p.Design, opts: p.LintOptions()})
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "symsim lint:", err)
			return 2
		}
		// ReadRaw, not Read: the point of linting a file is diagnosing
		// broken designs Read would reject outright.
		n, err := netlist.ReadRaw(f)
		_ = f.Close() // opened read-only; Close cannot lose data
		if err != nil {
			fmt.Fprintf(os.Stderr, "symsim lint: %s: %v\n", path, err)
			return 2
		}
		if n.Name == "" {
			n.Name = path
		}
		targets = append(targets, target{n: n})
	}

	exit := 0
	var jsonResults []any
	for _, t := range targets {
		t.opts.MaxPerCode = *maxDiags
		r := lint.Run(t.n, t.opts)
		// The canonical content hash identifies the design independent of
		// net/gate names and declaration order — the same digest keys the
		// symsimd result cache, so lint output and cached analyses can be
		// correlated.
		hash := t.n.Hash()
		if *jsonOut {
			jsonResults = append(jsonResults, struct {
				Hash   string `json:"designHash"`
				Result any    `json:"lint"`
			}{hash.String(), r.JSON(t.n)})
		} else if _, err := fmt.Fprintf(os.Stdout, "design hash %s\n", hash); err != nil {
			fmt.Fprintln(os.Stderr, "symsim lint:", err)
			return 2
		} else if err := r.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "symsim lint:", err)
			return 2
		}
		if r.Fails(minSev) {
			exit = 1
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintln(os.Stderr, "symsim lint:", err)
			return 2
		}
	}
	return exit
}
