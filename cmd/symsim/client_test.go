package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"symsim/internal/service"
)

// TestFollowJobReconnectsWithLastEventID pins the follower's resumption
// contract: the first SSE connection is severed mid-stream after one
// event, and the reconnect must carry that event's id in Last-Event-ID so
// the server can replay exactly the missed window. The follow succeeds
// once the second connection delivers the terminal event.
func TestFollowJobReconnectsWithLastEventID(t *testing.T) {
	var conns atomic.Int32
	var resumeID atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			fmt.Fprint(w, "id: 7\nevent: state\ndata: {\"type\":\"state\",\"job\":\"j1\",\"state\":\"running\",\"seq\":7}\n\n")
			w.(http.Flusher).Flush()
			// Sever the connection abruptly, mid-stream.
			panic(http.ErrAbortHandler)
		default:
			resumeID.Store(r.Header.Get("Last-Event-ID"))
			fmt.Fprint(w, "id: 8\nevent: state\ndata: {\"type\":\"state\",\"job\":\"j1\",\"state\":\"done\",\"seq\":8}\n\n")
		}
	})
	// The between-connections job poll must say "still running", or the
	// follower would (correctly) short-circuit without reconnecting.
	mux.HandleFunc("GET /jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"j1","state":"running"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	st, err := followJob(ts.URL, "j1")
	if err != nil {
		t.Fatal(err)
	}
	if st != service.StateDone {
		t.Errorf("followJob = %s, want done", st)
	}
	if n := conns.Load(); n != 2 {
		t.Errorf("SSE connections = %d, want 2 (one severed, one resumed)", n)
	}
	if got, _ := resumeID.Load().(string); got != "7" {
		t.Errorf("Last-Event-ID on reconnect = %q, want %q", got, "7")
	}
}

// TestFollowJobFallsBackToJobAPI: the stream dies without a terminal event
// but the job API says the job finished while the client was away — the
// follower must report that instead of spinning on reconnects.
func TestFollowJobFallsBackToJobAPI(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("GET /jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"j1","state":"done"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	st, err := followJob(ts.URL, "j1")
	if err != nil {
		t.Fatal(err)
	}
	if st != service.StateDone {
		t.Errorf("followJob = %s, want done via job API fallback", st)
	}
}

// A transient 503 on an idempotent GET is retried with backoff; the second
// attempt's 200 wins.
func TestClientGetRetriesTransient503(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	resp, err := clientGet(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d requests, want 2", n)
	}
}

// A non-retryable status is returned as-is, not retried: only transient
// refusals (429/502/503/504) burn the retry budget.
func TestClientGetDoesNotRetryHardErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()
	resp, err := clientGet(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d requests, want 1 (404 is not transient)", n)
	}
}

// Submission is not idempotent: a transport error (the request may have
// been accepted before the connection died) must never be retried.
func TestPostOnceNeverRetriesTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // every dial now fails: a pure transport error
	builds := 0
	_, err := postOnce(url, "application/json", func() (*http.Request, error) {
		builds++
		return http.NewRequest(http.MethodPost, url, nil)
	})
	if err == nil {
		t.Fatal("postOnce against a dead server succeeded")
	}
	if builds != 1 {
		t.Errorf("request built %d times, want 1 (no retry on transport error)", builds)
	}
}

// A received 429/503 means the server refused before accepting — safe to
// retry even for submission.
func TestPostOnceRetriesRefusedSubmission(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()
	resp, err := postOnce(ts.URL, "application/json", func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, ts.URL, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("status = %d, want 202", resp.StatusCode)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d requests, want 2", n)
	}
}

// backoff stays within [base/2, cap] for every retry index and jitters —
// a burst of bounced clients must not reconverge in lockstep.
func TestBackoffBoundsAndJitter(t *testing.T) {
	for n := 0; n < 12; n++ {
		uncapped := retryBase << uint(n)
		if uncapped > retryMaxDelay || uncapped < 0 {
			uncapped = retryMaxDelay
		}
		for i := 0; i < 200; i++ {
			d := backoff(n)
			if d < uncapped/2 || d > uncapped {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", n, d, uncapped/2, uncapped)
			}
		}
	}
	seen := map[int64]bool{}
	for i := 0; i < 50; i++ {
		seen[int64(backoff(3))] = true
	}
	if len(seen) < 2 {
		t.Error("backoff(3) returned a constant 50 times: jitter missing")
	}
}
