// Command bespoke runs the full bespoke-processor flow for one
// benchmark/design pair: symbolic co-analysis, pruning and re-synthesis,
// and — optionally — the paper's §5.0.1 validation against a concrete
// input vector.
//
// Usage:
//
//	bespoke -design omsp430 -bench tHold
//	bespoke -design bm32 -bench Div -validate -inputs 1000,7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"io"

	"symsim/internal/bespoke"
	"symsim/internal/core"
	"symsim/internal/logic"
	"symsim/internal/power"
	"symsim/internal/prog"
	"symsim/internal/report"
	"symsim/internal/vvp"
)

func main() {
	var (
		design   = flag.String("design", "omsp430", "processor: bm32 | omsp430 | dr5")
		bench    = flag.String("bench", "tHold", "benchmark name")
		workers  = flag.Int("workers", 1, "parallel path workers")
		validate = flag.Bool("validate", false, "run the fixed-input equivalence validation")
		inputs   = flag.String("inputs", "", "comma-separated input words for -validate/-power (fills the benchmark's X words in order)")
		outJSON  = flag.String("o", "", "write the bespoke netlist as interchange JSON to this file")
		outVlog  = flag.String("verilog", "", "write the bespoke netlist as structural Verilog to this file")
		powerRep = flag.Bool("power", false, "measure switching activity of the concrete run (needs -inputs)")
		vcdOut   = flag.String("vcd", "", "dump the concrete run's waveform (needs -inputs)")
	)
	flag.Parse()

	p, err := report.BuildPlatform(report.Design(*design), *bench)
	if err != nil {
		fatal(err)
	}
	res, err := core.Analyze(p, core.Config{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	bsp, err := bespoke.Generate(res)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("design            %s\n", p.Name)
	fmt.Printf("benchmark         %s\n", *bench)
	fmt.Printf("original gates    %d\n", bsp.OriginalGates)
	fmt.Printf("exercisable gates %d  (%.2f%% reduction)\n", bsp.ExercisableGates, bsp.ReductionPct())
	fmt.Printf("bespoke netlist   %d physical gates after re-synthesis\n", bsp.BespokeGates)
	fmt.Printf("re-synthesis      %d tied, %d folded, %d swept, %d X-ties\n",
		bsp.Resynth.Tied, bsp.Resynth.Folded, bsp.Resynth.Swept, bsp.Resynth.XTies)

	if *outJSON != "" {
		if err := writeFile(*outJSON, bsp.Bespoke.Write); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote             %s (interchange JSON)\n", *outJSON)
	}
	if *outVlog != "" {
		if err := writeFile(*outVlog, bsp.Bespoke.WriteVerilog); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote             %s (structural Verilog)\n", *outVlog)
	}

	if !*validate && !*powerRep && *vcdOut == "" {
		return
	}
	var mi []bespoke.MemInit
	width := 32
	if *design == "omsp430" {
		width = 16
	}
	if *inputs != "" {
		// Re-derive the benchmark's input words: rebuild the image to
		// learn the X word indices, then pin them in order.
		img, err := prog.Build(*bench, benchISA(*design))
		if err != nil {
			fatal(err)
		}
		vals := strings.Split(*inputs, ",")
		for i, w := range img.XWords {
			if i >= len(vals) {
				break
			}
			v, err := strconv.ParseUint(strings.TrimSpace(vals[i]), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad input %q: %w", vals[i], err))
			}
			mi = append(mi, bespoke.MemInit{Mem: "dmem", Word: w, Val: logic.NewVecUint64(width, v)})
		}
	}
	if *validate {
		rep, err := bespoke.Validate(res, bsp, p, mi, 1<<22)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("validation        PASS: %d cycles, %d output samples equal, %d memory words equal,\n",
			rep.Cycles, rep.OutputsCompared, rep.MemWordsCompared)
		fmt.Printf("                  exercised(%d) ⊆ exercisable(%d), 0 violations\n",
			rep.ExercisedConcrete, res.ExercisableCount)
	}
	if *powerRep {
		pmi := make([]power.MemInit, len(mi))
		for i, in := range mi {
			pmi[i] = power.MemInit{Mem: in.Mem, Word: in.Word, Val: in.Val}
		}
		pf, err := power.Measure(p, pmi, 1<<22)
		if err != nil {
			fatal(err)
		}
		fmt.Print(pf.Report(res))
	}
	if *vcdOut != "" {
		if err := dumpVCD(*vcdOut, p, mi); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote             %s (waveform)\n", *vcdOut)
	}
}

// writeFile creates path and streams gen into it.
func writeFile(path string, gen func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gen(f); err != nil {
		_ = f.Close() // the generator's error takes precedence
		return err
	}
	return f.Close()
}

// dumpVCD reruns the application concretely with tracing and writes the
// waveform.
func dumpVCD(path string, p *core.Platform, mi []bespoke.MemInit) error {
	if err := p.Design.Freeze(); err != nil {
		return err
	}
	tr := &vvp.Trace{}
	sim := vvp.New(p.Design, vvp.Options{Trace: tr})
	sim.SetMonitorX(&p.Monitor)
	sim.BindStimulus(p.Stimulus())
	for _, in := range mi {
		id, ok := p.Design.MemByName(in.Mem)
		if !ok {
			return fmt.Errorf("no memory %q", in.Mem)
		}
		sim.SetMemWord(id, in.Word, in.Val)
	}
	for {
		status, err := sim.Step()
		if err != nil {
			return err
		}
		if status == vvp.Finished {
			break
		}
		if status == vvp.HaltX {
			return fmt.Errorf("run halted on X; provide -inputs for a concrete waveform")
		}
		if sim.Cycles() > 1<<22 {
			return fmt.Errorf("no finish")
		}
	}
	return writeFile(path, func(w io.Writer) error {
		return vvp.WriteVCD(w, p.Design, tr, "1ns")
	})
}

// benchISA maps a design name to its benchmark ISA.
func benchISA(design string) prog.ISA {
	switch design {
	case "bm32":
		return prog.ISAMips
	case "omsp430":
		return prog.ISAMsp430
	default:
		return prog.ISARV32
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bespoke:", err)
	os.Exit(1)
}
