// Command asm assembles textual assembly for any of the three evaluation
// ISAs, prints a disassembly listing, and can execute the program on the
// matching gate-level core.
//
// Usage:
//
//	asm -isa rv32e prog.s                 # listing to stdout
//	asm -isa msp430 -run prog.s           # assemble + run on openMSP430
//	asm -isa mips32 -run -dump 8 prog.s   # ... and print dmem[0..7]
package main

import (
	"flag"
	"fmt"
	"os"

	"symsim/internal/core"
	"symsim/internal/cpu/bm32"
	"symsim/internal/cpu/cputest"
	"symsim/internal/cpu/dr5"
	"symsim/internal/cpu/omsp430"
	"symsim/internal/isa"
	"symsim/internal/isa/asmtext"
	"symsim/internal/isa/mips"
	"symsim/internal/isa/msp430"
	"symsim/internal/isa/rv32"
)

func main() {
	var (
		isaName = flag.String("isa", "rv32e", "target ISA: rv32e | mips32 | msp430")
		run     = flag.Bool("run", false, "execute on the matching gate-level core")
		dump    = flag.Int("dump", 4, "data-memory words to print after -run")
		cycles  = flag.Uint64("cycles", 1<<20, "cycle budget for -run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asm -isa <isa> [-run] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := asmtext.Assemble(*isaName, string(src))
	if err != nil {
		fatal(err)
	}
	listing(*isaName, img)

	if !*run {
		return
	}
	var p *core.Platform
	switch *isaName {
	case "rv32e", "rv32", "riscv":
		p, err = dr5.Build(img)
	case "mips32", "mips":
		p, err = bm32.Build(img)
	case "msp430":
		p, err = omsp430.Build(img)
	}
	if err != nil {
		fatal(err)
	}
	sim, err := cputest.Run(p, *cycles)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nhalted after %d cycles on %s\n", sim.Cycles(), p.Name)
	for i := 0; i < *dump; i++ {
		v, err := cputest.MemWord(sim, "dmem", i)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dmem[%2d] = %s\n", i, v)
	}
}

// listing prints address, encoding and disassembly for each program word.
func listing(isaName string, img *isa.Image) {
	switch isaName {
	case "msp430":
		for i := 0; i < len(img.ROM); {
			w, _ := img.ROM[i].Uint64()
			var ext uint64
			if i+1 < len(img.ROM) {
				ext, _ = img.ROM[i+1].Uint64()
			}
			text, width := msp430.Disasm(uint16(w), uint16(ext))
			if width == 2 {
				fmt.Printf("%04x: %04x %04x  %s\n", i*2, w, ext, text)
			} else {
				fmt.Printf("%04x: %04x       %s\n", i*2, w, text)
			}
			i += width
		}
	case "mips32", "mips":
		for i, wv := range img.ROM {
			w, _ := wv.Uint64()
			fmt.Printf("%04x: %08x  %s\n", i*4, w, mips.Disasm(uint32(w)))
		}
	default:
		for i, wv := range img.ROM {
			w, _ := wv.Uint64()
			fmt.Printf("%04x: %08x  %s\n", i*4, w, rv32.Disasm(uint32(w)))
		}
	}
	if len(img.XWords) > 0 {
		fmt.Printf("input words (X): %v\n", img.XWords)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asm:", err)
	os.Exit(1)
}
