// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be recorded in the repository
// (BENCH_kernel.json) and compared across commits without scraping ad-hoc
// text. It reads the benchmark output from stdin (or a file argument) and
// writes JSON to stdout or -o.
//
// Only the standard library is used. Unparseable lines are ignored, so the
// tool can consume raw `go test` output including test framework noise.
//
// Derived metrics: when a benchmark reports both a "cycles" metric and
// ns/op or allocs/op, per-cycle figures (ns/cycle is already reported by
// the harness; allocs/cycle is computed here) are added — the quantities
// the perf trajectory tracks per CPU x benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// procSuffix strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       procSuffix.ReplaceAllString(f[0], ""),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// The remainder is value/unit pairs: "85241517 ns/op 893.0 cycles".
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			b.Metrics[f[i+1]] = v
		}
		if cycles := b.Metrics["cycles"]; cycles > 0 {
			if allocs, ok := b.Metrics["allocs/op"]; ok {
				b.Metrics["allocs/cycle"] = allocs / cycles
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchjson [-o out.json] [bench-output.txt]\n\nReads `go test -bench` output (stdin or a file) and writes JSON.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		fh, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer fh.Close()
		in = fh
	}
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
