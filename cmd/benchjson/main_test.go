package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: symsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineComparison/bm32/kernel-8         	       8	  85241517 ns/op	       893.0 cycles	     95455 ns/cycle
BenchmarkSettleSteadyState/kernel-8             	     200	     19787 ns/op	       0 B/op	       0 allocs/op
BenchmarkTable4Paths/tHold/omsp430-8            	       3	  20000000 ns/op	       857.0 cycles	         4.000 paths	       100 allocs/op
PASS
ok  	symsim	2.5s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "symsim" {
		t.Fatalf("header: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEngineComparison/bm32/kernel" {
		t.Fatalf("name with proc suffix not stripped: %q", b.Name)
	}
	if b.Iterations != 8 {
		t.Fatalf("iterations = %d", b.Iterations)
	}
	if b.Metrics["ns/op"] != 85241517 || b.Metrics["cycles"] != 893 || b.Metrics["ns/cycle"] != 95455 {
		t.Fatalf("metrics: %v", b.Metrics)
	}
	// -benchmem units parse, including zero values.
	if v, ok := rep.Benchmarks[1].Metrics["allocs/op"]; !ok || v != 0 {
		t.Fatalf("allocs/op: %v", rep.Benchmarks[1].Metrics)
	}
	// Derived allocs/cycle appears exactly when cycles and allocs/op
	// coexist.
	if _, ok := rep.Benchmarks[1].Metrics["allocs/cycle"]; ok {
		t.Fatal("allocs/cycle derived without a cycles metric")
	}
	got := rep.Benchmarks[2].Metrics["allocs/cycle"]
	if math.Abs(got-100.0/857.0) > 1e-12 {
		t.Fatalf("allocs/cycle = %v", got)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := parse(strings.NewReader("=== RUN TestFoo\nBenchmark garbage line\nBenchmarkX-4 notanint 5 ns/op\nok symsim 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
}
