package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays a throwaway Go module on disk for -C.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for name, body := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/p.go": "package p\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	var code int
	capture(t, func() { code = run([]string{"-C", dir, "./..."}) })
	if code != 0 {
		t.Fatalf("clean module: exit %d, want 0", code)
	}
}

func TestRunFindingFailsAndRendersJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/p.go": `package p

type f struct{}

func (f) Close() error { return nil }

func drop(x f) {
	x.Close()
}
`,
	})
	var code int
	out := capture(t, func() { code = run([]string{"-C", dir, "-json", "./..."}) })
	if code != 1 {
		t.Fatalf("seeded SA006 violation: exit %d, want 1", code)
	}
	var rep struct {
		Diags []struct {
			Code string `json:"code"`
		} `json:"diags"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not the diag JSON schema: %v\n%s", err, out)
	}
	if len(rep.Diags) != 1 || rep.Diags[0].Code != "SA006" {
		t.Fatalf("want exactly one SA006 diag, got %+v", rep.Diags)
	}
}

func TestRunRejectsUnknownFlagsAndPatterns(t *testing.T) {
	if run([]string{"./cmd/symsimvet"}) != 2 {
		t.Error("package pattern other than ./... should be rejected with exit 2")
	}
	if run([]string{"-fail-on", "fatal"}) != 2 {
		t.Error("unknown -fail-on level should exit 2")
	}
	if run([]string{"-codes", "SA999"}) != 2 {
		t.Error("unknown code should exit 2")
	}
}
