// Command symsimvet runs symsim's self-hosted static-analysis suite
// (internal/analysis, codes SA000–SA006) over the repository's own
// source tree — the same contract `symsim lint` applies to netlists,
// pointed at the tool itself: stable diagnostic codes, text or JSON
// output, and a -fail-on severity threshold that decides the exit code.
//
//	symsimvet ./...            # analyze the whole module (the default)
//	symsimvet -json ./...      # machine-readable report
//	symsimvet -codes SA001     # restrict to one analyzer's findings
//	symsimvet -hot             # list the //symsim:hotpath-reachable set
//
// Exit status: 0 when no finding reaches the -fail-on threshold, 1 when
// one does, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"symsim/internal/analysis"
	"symsim/internal/diag"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("symsimvet", flag.ExitOnError)
	var (
		jsonOut = fs.Bool("json", false, "emit machine-readable JSON instead of text")
		failOn  = fs.String("fail-on", "error", "lowest severity that fails the run: error | warn | info")
		codes   = fs.String("codes", "", "comma-separated SA codes to report (default: all)")
		listHot = fs.Bool("hot", false, "list the hotpath-reachable functions instead of analyzing")
		rootDir = fs.String("C", "", "module root to analyze (default: walk up from the working directory)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: symsimvet [-json] [-fail-on error|warn|info] [-codes SA001,SA006] [-hot] [./...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The analyzers are whole-program (call graphs and registries span
	// packages), so the only supported pattern is the module itself;
	// "./..." is accepted for familiarity.
	for _, pat := range fs.Args() {
		if pat != "./..." && pat != "..." {
			fmt.Fprintf(os.Stderr, "symsimvet: unsupported pattern %q (the suite always analyzes the whole module; use ./...)\n", pat)
			return 2
		}
	}

	minSev, err := diag.ParseFailOn(*failOn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symsimvet: %v\n", err)
		return 2
	}
	only := map[diag.Code]bool{}
	if *codes != "" {
		for _, c := range strings.Split(*codes, ",") {
			c = strings.TrimSpace(c)
			if analysis.AnalyzerFor(diag.Code(c)) == nil {
				fmt.Fprintf(os.Stderr, "symsimvet: unknown code %q\n", c)
				return 2
			}
			only[diag.Code(c)] = true
		}
	}

	root := *rootDir
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "symsimvet:", err)
			return 2
		}
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symsimvet:", err)
		return 2
	}

	if *listHot {
		for _, fn := range analysis.HotFunctions(prog) {
			fmt.Println(fn)
		}
		return 0
	}

	rep := analysis.Vet(prog)
	if len(only) > 0 {
		filtered := diag.NewReport(rep.Name)
		for _, d := range rep.Diags {
			if only[d.Code] {
				filtered.Add(d)
			}
		}
		rep = filtered
	}

	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "symsimvet:", err)
			return 2
		}
	} else if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "symsimvet:", err)
		return 2
	}
	if rep.Fails(minSev) {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
