// Command symsimd runs symsim as a long-lived analysis daemon: submitted
// jobs are queued (priority FIFO, bounded with backpressure), executed by
// a worker pool of symbolic co-analyses, checkpointed on shutdown and
// resumed on restart, with complete results kept in a content-addressed
// cache keyed by the canonical netlist hash — identical submissions return
// instantly.
//
// Usage:
//
//	symsimd -listen localhost:8466 -data /var/lib/symsimd
//	symsimd -jobs 4 -queue 128 -policy clustered -k 4   # server-side defaults
//
// The analysis-tuning flags (policy, engine, memx, workers, budgets) set
// the daemon-side defaults applied to submissions that leave those fields
// empty; they are the same flag vocabulary as cmd/symsim (see
// internal/cliflags). SIGINT/SIGTERM drain gracefully: the HTTP listener
// stops, running jobs are canceled and checkpointed, and the queue is
// preserved on disk for the next start.
//
// GET /metrics on the main listener serves Prometheus text exposition
// (the JSON snapshot moved to /metrics.json); -debug starts a second,
// normally loopback-only listener with the net/http/pprof handlers:
//
//	symsimd -debug localhost:8467
//	go tool pprof http://localhost:8467/debug/pprof/profile
//
// The HTTP API is documented on service.Handler; cmd/symsim's
// submit/status/result/cancel/jobs subcommands are its client.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"symsim/internal/cliflags"
	"symsim/internal/cluster"
	"symsim/internal/fault"
	"symsim/internal/obs"
	"symsim/internal/service"
)

func main() {
	var (
		listen     = flag.String("listen", "localhost:8466", "HTTP listen address")
		dataDir    = flag.String("data", "symsimd-data", "durable state directory (jobs, results, cache, checkpoints)")
		jobs       = flag.Int("jobs", 2, "concurrent analysis jobs (each job additionally uses its own -workers path workers)")
		queueCap   = flag.Int("queue", 64, "pending-job queue capacity; submissions beyond it get HTTP 429")
		ckptEvery  = flag.Duration("checkpoint-every", 15*time.Second, "periodic checkpoint interval for running jobs")
		progress   = flag.Duration("progress-every", 250*time.Millisecond, "progress heartbeat interval streamed to subscribers")
		keepAlive  = flag.Duration("sse-keepalive", 15*time.Second, "SSE comment-line keep-alive interval (defeats proxy idle timeouts)")
		leaseTTL   = flag.Duration("lease-ttl", 0, "job lease TTL: a running job making no observable progress this long is requeued under a new lease (0 = watchdog off)")
		leaseCheck = flag.Duration("lease-check-every", 0, "lease watchdog sweep interval (default lease-ttl/4)")
		faultPlan  = flag.String("fault-plan", "", "chaos testing: inject store faults per internal/fault plan spec (e.g. 'rename@3=eio,write@2=short' or 'seed:42:5'); NOT for production")
		debug      = flag.String("debug", "", "debug listen address for net/http/pprof (e.g. localhost:8467; empty = off)")
		defaults   = cliflags.Register(flag.CommandLine)
		clusterCfg = cliflags.RegisterCluster(flag.CommandLine)
	)
	flag.Parse()

	logger := log.New(os.Stderr, "symsimd: ", log.LstdFlags)
	if clusterCfg.Coordinator && clusterCfg.Worker != "" {
		logger.Fatalf("-coordinator and -worker are mutually exclusive: a daemon either owns the authoritative CSM or delegates to one")
	}
	var vfs fault.FS
	if *faultPlan != "" {
		plan, err := fault.ParsePlan(*faultPlan)
		if err != nil {
			logger.Fatalf("-fault-plan: %v", err)
		}
		inj := fault.NewInjector(fault.OS{}, plan)
		inj.Logf = func(format string, args ...any) { logger.Printf(format, args...) }
		inj.Counter = obs.Default.Counter("symsim_fault_injected_total", "Faults injected into the store by the chaos fault plan.")
		vfs = inj
		logger.Printf("CHAOS MODE: store faults injected per plan %q", *faultPlan)
	}
	svcCfg := service.Config{
		DataDir:         *dataDir,
		Workers:         *jobs,
		QueueCap:        *queueCap,
		CheckpointEvery: *ckptEvery,
		ProgressEvery:   *progress,
		SSEKeepAlive:    *keepAlive,
		LeaseTTL:        *leaseTTL,
		LeaseCheckEvery: *leaseCheck,
		FS:              vfs,
		Defaults:        defaults,
		Logf:            func(format string, args ...any) { logger.Printf(format, args...) },
	}
	if clusterCfg.Worker != "" {
		// Worker mode routes local cache misses through the coordinator's
		// cluster-wide memo table (and publishes completed results back).
		svcCfg.RemoteCache = cluster.NewMemoClient(clusterCfg.Worker)
	}
	svc, err := service.New(svcCfg)
	if err != nil {
		logger.Fatal(err)
	}

	handler := service.Handler(svc)
	var coord *cluster.Coordinator
	if clusterCfg.Coordinator {
		// Coordinator mode mounts the cluster API next to the job API. The
		// co-located service doubles as the fleet's memo table.
		coord = cluster.NewCoordinator(cluster.Config{
			Memo:      svc,
			ShardSize: clusterCfg.ShardSize,
			LeaseTTL:  clusterCfg.LeaseTTL,
			Logf:      func(format string, args ...any) { logger.Printf(format, args...) },
		})
		mux := http.NewServeMux()
		mux.Handle("/cluster/", coord.Handler())
		mux.Handle("/", handler)
		handler = mux
		logger.Printf("cluster coordinator enabled (shard %d, lease TTL %v)", clusterCfg.ShardSize, clusterCfg.LeaseTTL)
	}

	server := &http.Server{Addr: *listen, Handler: handler}

	if *debug != "" {
		// pprof lives on its own listener (normally loopback-only) so
		// profiling is never exposed on the job-submission address. The
		// handlers are registered explicitly: the daemon's API mux must
		// not depend on http.DefaultServeMux side effects.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := &http.Server{Addr: *debug, Handler: dmux}
		go func() {
			logger.Printf("pprof debug listener on %s", *debug)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug listener failed: %v", err)
			}
		}()
		defer dbg.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logger.Printf("listening on %s (data %s, %d job workers, queue %d)", *listen, *dataDir, *jobs, *queueCap)

	workerDone := make(chan struct{})
	if clusterCfg.Worker != "" {
		w := &cluster.Worker{
			Coordinator: clusterCfg.Worker,
			Slots:       clusterCfg.Slots,
			Name:        *listen,
			Logf:        func(format string, args ...any) { logger.Printf(format, args...) },
		}
		go func() {
			defer close(workerDone)
			_ = w.Run(ctx) // returns ctx.Err() once the drain signal fires
		}()
		logger.Printf("cluster worker enabled: pulling from %s (%d slots)", clusterCfg.Worker, clusterCfg.Slots)
	} else {
		close(workerDone)
	}

	select {
	case <-ctx.Done():
		logger.Printf("shutdown signal: draining")
	case err := <-errCh:
		logger.Printf("listener failed: %v", err)
		svc.Drain()
		os.Exit(1)
	}

	// Stop accepting HTTP first, then drain: running analyses are
	// canceled, write their final checkpoints and re-queue; the next start
	// resumes them.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	// The worker's lease loop stops with the signal context; wait for its
	// in-flight units to settle (their analyses observe the cancellation)
	// before draining. Abandoned units simply lease-expire and requeue at
	// the coordinator — by design, nothing is lost.
	select {
	case <-workerDone:
	case <-shutdownCtx.Done():
		logger.Printf("worker did not settle in time; its leases will expire at the coordinator")
	}
	if coord != nil {
		coord.Close()
	}
	svc.Drain()
	logger.Printf("drained, bye")
}
