// Command paper regenerates the tables and figures of the paper's
// evaluation section (DAC 2022, "A scalable symbolic simulation tool for
// low power embedded systems"): Tables 1-4 and Figures 5-6.
//
// Usage:
//
//	paper -all                 # everything
//	paper -table 3             # one table (1..4)
//	paper -fig 6               # one figure (5 or 6)
//	paper -csv                 # raw sweep data as CSV
//	paper -bench Div,tea8      # restrict the sweep
//	paper -workers 4           # parallel path exploration
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"symsim/internal/core"
	"symsim/internal/report"
)

func main() {
	var (
		all     = flag.Bool("all", false, "regenerate every table and figure")
		table   = flag.Int("table", 0, "regenerate one table (1..4)")
		fig     = flag.Int("fig", 0, "regenerate one figure (5 or 6)")
		csv     = flag.Bool("csv", false, "print the sweep as CSV")
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default: all six)")
		workers = flag.Int("workers", 1, "parallel path workers per analysis")
		quiet   = flag.Bool("q", false, "suppress per-cell progress")
	)
	flag.Parse()
	if !*all && *table == 0 && *fig == 0 && !*csv {
		*all = true
	}

	// Tables 1 and 2 need no sweep.
	if *all || *table == 1 {
		fmt.Println(report.Table1())
	}
	if *all || *table == 2 {
		t2, err := report.Table2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t2)
	}
	needSweep := *all || *table == 3 || *table == 4 || *fig != 0 || *csv
	if !needSweep {
		return
	}

	opt := report.Options{Config: core.Config{Workers: *workers}}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}
	if !*quiet {
		opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	sweep, err := report.Run(opt)
	if err != nil {
		fatal(err)
	}
	if *all || *table == 3 {
		fmt.Println(sweep.Table3())
	}
	if *all || *table == 4 {
		fmt.Println(sweep.Table4())
	}
	if *all || *fig == 5 {
		fmt.Println(sweep.Figure5())
	}
	if *all || *fig == 6 {
		fmt.Println(sweep.Figure6())
	}
	if *csv {
		fmt.Print(sweep.CSV())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
