// Package symsim is a scalable, design-agnostic symbolic simulation
// library for hardware/software co-analysis of low-power embedded systems,
// reproducing "A scalable symbolic simulation tool for low power embedded
// systems" (DAC 2022).
//
// The library simulates an application binary on the gate-level netlist of
// its processor with every application input replaced by an unknown symbol
// (X). When an X reaches a monitored control-flow signal at a PC-changing
// instruction, the simulation halts, saves its state, and forks over the
// possible branch outcomes; a Conservative State Manager merges states
// observed at the same PC so the exploration converges. The result is a
// dichotomy of the design's gates into exercisable and never-exercisable
// sets, which drives application-specific optimizations such as bespoke
// processor generation.
//
// # Quick start
//
//	p, _ := symsim.BuildPlatform(symsim.OMSP430, "tHold")
//	res, _ := symsim.Analyze(p, symsim.Config{})
//	fmt.Printf("%d of %d gates exercisable (%.1f%% reduction)\n",
//		res.ExercisableCount, res.TotalGates, res.ReductionPct())
//	bsp, _ := symsim.Bespoke(res)
//
// # Bringing your own design
//
// The co-analysis is design-agnostic: any gate-level netlist built with
// the NewNetlist/NewModule construction APIs can be analyzed by filling in
// a Platform (the design, a state specification locating its flip-flops
// and PC, the $monitor_x control-flow signals, and clocking). The three
// built-in evaluation processors (bm32, openMSP430, dr5) show the pattern.
package symsim

import (
	"context"
	"io"

	"symsim/internal/bespoke"
	"symsim/internal/core"
	"symsim/internal/csm"
	"symsim/internal/lint"
	"symsim/internal/logic"
	"symsim/internal/netlist"
	"symsim/internal/power"
	"symsim/internal/prog"
	"symsim/internal/report"
	"symsim/internal/rtl"
	"symsim/internal/symeval"
	"symsim/internal/vvp"
)

// Design identifies a built-in evaluation processor.
type Design = report.Design

// The three processors of the paper's evaluation (Table 2).
const (
	// BM32 is the 32-bit MIPS implementation with a hardware multiplier.
	BM32 = report.BM32
	// OMSP430 is the 16-bit openMSP430 with multiplier, watchdog, GPIO
	// and TimerA peripherals.
	OMSP430 = report.OMSP430
	// DR5 is the RV32E darkRiscV-style core without a multiplier.
	DR5 = report.DR5
)

// Benchmarks lists the six applications of the paper's Table 1.
func Benchmarks() []string {
	var out []string
	for _, b := range prog.Benchmarks {
		out = append(out, b.Name)
	}
	return out
}

// BuildPlatform assembles the named benchmark for the design's ISA and
// elaborates the processor's gate-level netlist with the program loaded
// and its input words initialized to X.
func BuildPlatform(d Design, benchmark string) (*Platform, error) {
	return report.BuildPlatform(d, benchmark)
}

// Platform packages a design under test: netlist, machine-state
// specification, monitored control-flow signals and clocking.
type Platform = core.Platform

// Config tunes a co-analysis run; the zero value reproduces the paper's
// defaults (merge-all conservative states, sequential exploration).
type Config = core.Config

// Result is the outcome of a co-analysis: the exercisable/unexercisable
// gate dichotomy plus path and cycle accounting.
type Result = core.Result

// Analyze performs symbolic hardware/software co-analysis (paper
// Algorithm 1).
func Analyze(p *Platform, cfg Config) (*Result, error) { return core.Analyze(p, cfg) }

// AnalyzeContext is Analyze under a caller-supplied context: cancellation
// or an expired deadline stops the exploration cleanly and returns a
// partial but sound Result with Complete=false.
func AnalyzeContext(ctx context.Context, p *Platform, cfg Config) (*Result, error) {
	return core.AnalyzeContext(ctx, p, cfg)
}

// --- Run governance: budgets, degradation, checkpoint/resume ---

// Budget bounds a run (wall clock, simulated cycles, CSM states, forks)
// with graceful, sound degradation on exhaustion.
type Budget = core.Budget

// Trip identifies what ended an exploration early.
type Trip = core.Trip

// Trip causes.
const (
	TripNone      = core.TripNone
	TripCanceled  = core.TripCanceled
	TripWallClock = core.TripWallClock
	TripCycles    = core.TripCycles
	TripCSMStates = core.TripCSMStates
	TripForks     = core.TripForks
)

// Degradation reports how an incomplete run was kept sound.
type Degradation = core.Degradation

// Quarantine records a path worker that panicked and was contained.
type Quarantine = core.Quarantine

// Progress is one heartbeat snapshot of a running analysis.
type Progress = core.Progress

// ValidationError reports an invalid Platform or Config field.
type ValidationError = core.ValidationError

// CheckpointConfig enables periodic atomic checkpointing of a run.
type CheckpointConfig = core.CheckpointConfig

// Checkpoint is a consistent snapshot of a running co-analysis, usable as
// Config.Resume to continue an interrupted run.
type Checkpoint = core.Checkpoint

// SavedState is one exported conservative state inside a checkpoint.
type SavedState = csm.SavedState

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpoint(path) }

// ErrCheckpointCorrupt is wrapped by every error a damaged checkpoint
// produces (truncation, bit rot, wrong magic, trailing bytes), so callers
// can distinguish corruption — restart fresh — from I/O failures with
// errors.Is.
var ErrCheckpointCorrupt = core.ErrCheckpointCorrupt

// --- Conservative state management (paper §3.3) ---

// Policy decides how conservative states are formed from the states
// observed at each PC.
type Policy = csm.Manager

// MergeAllPolicy keeps a single uber-conservative state per PC (the
// default, used by prior work [4]).
func MergeAllPolicy() Policy { return csm.NewMergeAll() }

// ClusteredPolicy keeps up to k conservative states per PC, trading
// simulation effort for less over-approximation (paper Figure 3).
func ClusteredPolicy(k int) Policy { return csm.NewClustered(k) }

// ExactPolicy never merges; exhaustive path enumeration with a state
// budget after which it degrades to merging.
func ExactPolicy(maxStates int) Policy { return csm.NewExact(maxStates) }

// Constraint states an application fact about state bits at a PC — a
// pinned bit, a register value range, or a bit relation — refining merged
// conservative states with application knowledge ([15]).
type Constraint = csm.Constraint

// ConstraintError identifies which constraint in a set was rejected and
// why; recover it from a ConstrainedPolicy error with errors.As.
type ConstraintError = csm.ConstraintError

// ConstrainedPolicy is merge-all refined by application constraints. It
// rejects malformed facts (out-of-range bits, inverted ranges) up front
// with a *ConstraintError rather than silently skipping them at observe
// time. The returned policy also proves forked children infeasible before
// the engine schedules them (see Config.DisablePrune).
func ConstrainedPolicy(bits int, cons []Constraint) (Policy, error) {
	return csm.NewConstrained(bits, cons)
}

// --- Bespoke processor generation (paper §3, [4]) ---

// BespokeResult describes a pruned, re-synthesized bespoke design.
type BespokeResult = bespoke.Result

// Bespoke prunes the unexercisable gates of a co-analysis result, ties
// their fanout to the observed constants and re-synthesizes the netlist.
func Bespoke(res *Result) (*BespokeResult, error) { return bespoke.Generate(res) }

// MemInit pins a memory word for a validation run.
type MemInit = bespoke.MemInit

// ValidationReport is the outcome of the paper's §5.0.1 validation.
type ValidationReport = bespoke.ValidationReport

// ValidateBespoke reruns the application with fixed known inputs on both
// netlists and checks output equivalence and the exercised-subset
// property.
func ValidateBespoke(sym *Result, bsp *BespokeResult, p *Platform, inputs []MemInit, maxCycles uint64) (*ValidationReport, error) {
	return bespoke.Validate(sym, bsp, p, inputs, maxCycles)
}

// --- Evaluation harness (paper §5) ---

// Sweep holds a full benchmark x design evaluation matrix.
type Sweep = report.Sweep

// SweepOptions configure RunSweep.
type SweepOptions = report.Options

// RunSweep reruns the paper's evaluation: one co-analysis per benchmark
// per design.
func RunSweep(opt SweepOptions) (*Sweep, error) { return report.Run(opt) }

// Table1 renders the paper's benchmark table.
func Table1() string { return report.Table1() }

// Table2 renders the paper's platform characterization table.
func Table2() (string, error) { return report.Table2() }

// --- Design construction (bring your own netlist) ---

// Netlist is a flat gate-level design.
type Netlist = netlist.Netlist

// NewNetlist returns an empty netlist.
func NewNetlist(name string) *Netlist { return netlist.New(name) }

// Module is the word-level hardware construction DSL that elaborates to
// primitive gates (the "synthesis" front end).
type Module = rtl.Module

// NewModule creates a module with clock/reset infrastructure.
func NewModule(name string) *Module { return rtl.NewModule(name) }

// Bus is an ordered set of nets forming a word.
type Bus = rtl.Bus

// Simulator is the event-driven four-valued gate-level engine underlying
// the co-analysis (the vvp analogue of paper Figure 2).
type Simulator = vvp.Simulator

// SimOptions configure a raw simulator.
type SimOptions = vvp.Options

// SimStatus is the outcome of one simulation step.
type SimStatus = vvp.Status

// Simulation step outcomes.
const (
	// Running: the step completed without a symbolic event.
	Running = vvp.Running
	// HaltX: a monitored control-flow signal was X at a PC-changing
	// instruction.
	HaltX = vvp.HaltX
	// Finished: the design raised its terminating condition.
	Finished = vvp.Finished
)

// SimEngine selects the simulation machinery: the compiled kernel
// (default), the reference interpreter, or the bit-parallel batch engine.
// All produce the same dichotomy.
type SimEngine = vvp.Engine

// Simulation engines.
const (
	// EngineKernel is the compiled kernel: flattened netlist tables,
	// branch-free four-valued evaluation, adaptive level sweeps.
	EngineKernel = vvp.EngineKernel
	// EngineInterp is the reference interpreter the kernel is
	// differentially tested against.
	EngineInterp = vvp.EngineInterp
	// EngineBatch is the bit-parallel batched kernel: up to 64 pending
	// paths packed into two bitplanes per net and swept together in one
	// pass over the levelized design (Config.Lanes caps the packing).
	EngineBatch = vvp.EngineBatch
)

// MemXPolicy selects the semantics of memory writes with unknown
// addresses.
type MemXPolicy = vvp.MemXPolicy

// Memory X-address write semantics.
const (
	// MemXVerilog drops X-address writes (iverilog reg-array behaviour,
	// the default and what the paper's tool does).
	MemXVerilog = vvp.MemXVerilog
	// MemXSound conservatively merges the data into every candidate word.
	MemXSound = vvp.MemXSound
)

// NewSimulator creates a simulator for a frozen netlist.
func NewSimulator(d *Netlist, opts SimOptions) *Simulator { return vvp.New(d, opts) }

// Stimulus is a testbench schedule (clock, reset, input events).
type Stimulus = vvp.Stimulus

// MonitorXSpec is the $monitor_x argument: the control-flow signals whose
// X-ness halts the simulation at a PC-changing instruction.
type MonitorXSpec = vvp.MonitorXSpec

// StateSpec locates the machine state (flip-flops, memories, PC) for
// save/restore and conservative state management.
type StateSpec = vvp.StateSpec

// StateSpecFor builds the state specification for a design given the name
// of its PC register nets.
func StateSpecFor(d *Netlist, pcName string) (*StateSpec, error) { return vvp.SpecFor(d, pcName) }

// Value is a four-valued logic scalar (0, 1, X, Z).
type Value = logic.Value

// Four-valued logic constants.
const (
	Lo = logic.Lo
	Hi = logic.Hi
	X  = logic.X
	Z  = logic.Z
)

// Vec is a packed ternary vector.
type Vec = logic.Vec

// NewVec returns an all-X ternary vector of the given width.
func NewVec(width int) Vec { return logic.NewVec(width) }

// NewVecUint64 returns a fully known vector holding v.
func NewVecUint64(width int, v uint64) Vec { return logic.NewVecUint64(width, v) }

// --- Symbol propagation customization (paper §3.4, Figure 4) ---

// Sym is a four-valued logic value extended with symbol identity and
// taint labels: propagating each unknown input as a distinct symbol lets
// reconverging paths simplify, and taint implements gate-level
// information-flow tracking.
type Sym = logic.Sym

// SymInput returns a fresh identified input symbol.
func SymInput(id uint32, taint uint64) Sym { return logic.SymInput(id, taint) }

// SymAnon returns an anonymous unknown carrying the given taint.
func SymAnon(taint uint64) Sym { return logic.SymAnon(taint) }

// SymConst returns a constant symbolic value.
func SymConst(v Value) Sym { return logic.SymConst(v) }

// SymEvaluator propagates identified symbols through a netlist's
// combinational logic.
type SymEvaluator = symeval.Evaluator

// NewSymEvaluator creates a symbolic evaluator for a frozen netlist.
func NewSymEvaluator(d *Netlist) *SymEvaluator { return symeval.New(d) }

// GateKind enumerates the primitive cells of the netlist IR.
type GateKind = netlist.GateKind

// Primitive gate kinds (see netlist.GateKind for pin conventions).
const (
	KindConst0 = netlist.KindConst0
	KindConst1 = netlist.KindConst1
	KindBuf    = netlist.KindBuf
	KindNot    = netlist.KindNot
	KindAnd    = netlist.KindAnd
	KindOr     = netlist.KindOr
	KindNand   = netlist.KindNand
	KindNor    = netlist.KindNor
	KindXor    = netlist.KindXor
	KindXnor   = netlist.KindXnor
	KindMux2   = netlist.KindMux2
	KindDFF    = netlist.KindDFF
)

// NetID identifies a net within one netlist.
type NetID = netlist.NetID

// Digest is the canonical content hash of a netlist, returned by
// (*Netlist).Hash: rename-stable, declaration-order independent, and
// sensitive to any logic, parameter or memory-initialization change (the
// program image lives in ROM init, so it is covered). It is the identity
// under which symsimd caches analysis results and `symsim lint` reports
// designs.
type Digest = netlist.Digest

// TieOff is one never-exercisable gate with the constant its output
// settles to, as reported by Result.TieOffs.
type TieOff = netlist.TieOff

// --- Waveforms, interchange, and power analysis ---

// Trace records the event list of a simulation run.
type Trace = vvp.Trace

// WriteVCD renders a recorded trace as a Value Change Dump for waveform
// viewers.
func WriteVCD(w io.Writer, d *Netlist, tr *Trace, timescale string) error {
	return vvp.WriteVCD(w, d, tr, timescale)
}

// ReadNetlist parses the JSON netlist interchange format (the validated,
// frozen result is ready for simulation). Netlist values expose Write
// (JSON) and WriteVerilog for the reverse direction.
func ReadNetlist(r io.Reader) (*Netlist, error) { return netlist.Read(r) }

// --- Structural static analysis ---

// LintResult is the outcome of a structural lint run: typed diagnostics
// with stable codes (NL001…), severities and element locations.
type LintResult = lint.Result

// LintOptions tune a lint run; the zero value runs every check.
type LintOptions = lint.Options

// LintDiag is one structural finding.
type LintDiag = lint.Diag

// Lint runs structural static analysis over a netlist: combinational
// loops, multi-driven and undriven nets, dead and constant cones,
// flip-flop/memory control sanity and X reachability. It never panics,
// even on netlists Freeze would reject. For a Platform's design, prefer
// p.LintOptions() so the testbench semantics (concrete clocking,
// monitored nets) inform the analysis.
func Lint(n *Netlist, opts LintOptions) *LintResult { return lint.Run(n, opts) }

// PowerProfile is the switching-activity measurement of one concrete run.
type PowerProfile = power.Profile

// MeasurePower runs the platform's application with concrete inputs and
// collects per-net switching activity, total toggles and the per-cycle
// peak — the data behind the peak-power [5] and power-gating [6] analyses
// the co-analysis enables.
func MeasurePower(p *Platform, inputs []MemInit, maxCycles uint64) (*PowerProfile, error) {
	mi := make([]power.MemInit, len(inputs))
	for i, in := range inputs {
		mi[i] = power.MemInit{Mem: in.Mem, Word: in.Word, Val: in.Val}
	}
	return power.Measure(p, mi, maxCycles)
}

// SymbolicPeakBound is the static per-cycle switching bound the symbolic
// analysis licenses: only exercisable gates can ever toggle.
func SymbolicPeakBound(res *Result) uint64 { return power.SymbolicPeakBound(res) }

// SeqSymEvaluator steps identified symbols through a clocked design,
// cycle by cycle — taint tracking across registers ([7]).
type SeqSymEvaluator = symeval.Sequential

// NewSeqSymEvaluator creates a cycle-stepping symbolic evaluator for a
// frozen, memory-free netlist.
func NewSeqSymEvaluator(d *Netlist) (*SeqSymEvaluator, error) { return symeval.NewSequential(d) }
